//! Job reports: everything the tables and figures are computed from.

use std::collections::BTreeMap;

use simcore::{ByteSize, EventLog, NodeId, SimDuration, SimError};

/// How a job ended.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// Ran to completion.
    Completed,
    /// Crashed (usually with an OME).
    Failed(SimError),
}

impl JobOutcome {
    /// Whether the job completed.
    pub fn ok(&self) -> bool {
        matches!(self, JobOutcome::Completed)
    }

    /// Whether the job died of memory exhaustion.
    pub fn is_oom(&self) -> bool {
        matches!(self, JobOutcome::Failed(e) if e.is_oom())
    }
}

/// Per-node accounting extracted at the end of a run.
#[derive(Clone, Debug)]
pub struct NodeReport {
    /// The node.
    pub node: NodeId,
    /// The node's clock at the end of the run.
    pub elapsed: SimDuration,
    /// Total stop-the-world GC time.
    pub gc_time: SimDuration,
    /// Wall-clock compute time (excludes GC).
    pub compute_time: SimDuration,
    /// Wall-clock time stalled on blocking disk reads.
    pub io_stall_time: SimDuration,
    /// Heap high-water mark.
    pub peak_heap: ByteSize,
    /// Minor collections.
    pub minor_gcs: u64,
    /// Full collections.
    pub full_gcs: u64,
    /// Collections flagged useless (LUGCs).
    pub useless_gcs: u64,
    /// The node's recorded time series.
    pub log: EventLog,
}

/// The result of one job execution.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Completed or failed.
    pub outcome: JobOutcome,
    /// End-to-end job time (the slowest node's clock).
    pub elapsed: SimDuration,
    /// Per-node details.
    pub nodes: Vec<NodeReport>,
    /// Free-form named counters (memory-savings breakdown, tuple counts,
    /// interrupt counts, ...). Keys are stable strings used by harnesses.
    pub counters: BTreeMap<String, f64>,
}

impl JobReport {
    /// Total GC time across nodes.
    pub fn total_gc_time(&self) -> SimDuration {
        self.nodes.iter().map(|n| n.gc_time).sum()
    }

    /// GC time on the slowest node (what a stacked time-breakdown bar
    /// shows for the job).
    pub fn critical_path_gc(&self) -> SimDuration {
        self.nodes
            .iter()
            .max_by_key(|n| n.elapsed)
            .map(|n| n.gc_time)
            .unwrap_or(SimDuration::ZERO)
    }

    /// Fraction of end-to-end time spent in GC on the slowest node.
    pub fn gc_fraction(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.critical_path_gc().as_secs_f64() / self.elapsed.as_secs_f64()
    }

    /// The highest per-node heap peak (Figure 10's "peak memory" line).
    pub fn peak_heap(&self) -> ByteSize {
        self.nodes
            .iter()
            .map(|n| n.peak_heap)
            .max()
            .unwrap_or(ByteSize::ZERO)
    }

    /// Total LUGCs observed.
    pub fn useless_gcs(&self) -> u64 {
        self.nodes.iter().map(|n| n.useless_gcs).sum()
    }

    /// Reads a counter (0.0 if absent).
    pub fn counter(&self, key: &str) -> f64 {
        self.counters.get(key).copied().unwrap_or(0.0)
    }

    /// Adds to a counter.
    pub fn bump_counter(&mut self, key: &str, by: f64) {
        *self.counters.entry(key.to_string()).or_insert(0.0) += by;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimTime;

    fn node_report(id: u32, elapsed_s: u64, gc_s: u64, peak_mib: u64) -> NodeReport {
        NodeReport {
            node: NodeId(id),
            elapsed: SimDuration::from_secs(elapsed_s),
            gc_time: SimDuration::from_secs(gc_s),
            compute_time: SimDuration::from_secs(elapsed_s - gc_s),
            io_stall_time: SimDuration::ZERO,
            peak_heap: ByteSize::mib(peak_mib),
            minor_gcs: 2,
            full_gcs: 1,
            useless_gcs: if gc_s > 5 { 3 } else { 0 },
            log: EventLog::new(),
        }
    }

    #[test]
    fn aggregates_follow_the_slowest_node() {
        let report = JobReport {
            outcome: JobOutcome::Completed,
            elapsed: SimDuration::from_secs(20),
            nodes: vec![node_report(0, 10, 2, 5), node_report(1, 20, 10, 9)],
            counters: BTreeMap::new(),
        };
        assert_eq!(report.critical_path_gc(), SimDuration::from_secs(10));
        assert!((report.gc_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(report.peak_heap(), ByteSize::mib(9));
        assert_eq!(report.useless_gcs(), 3);
    }

    #[test]
    fn outcome_classification() {
        assert!(JobOutcome::Completed.ok());
        let oom = JobOutcome::Failed(SimError::OutOfMemory {
            node: NodeId(0),
            requested: ByteSize(1),
            free: ByteSize(0),
        });
        assert!(oom.is_oom());
        assert!(!oom.ok());
        let other = JobOutcome::Failed(SimError::Config("x".into()));
        assert!(!other.is_oom());
    }

    #[test]
    fn counters_default_to_zero() {
        let mut r = JobReport {
            outcome: JobOutcome::Completed,
            elapsed: SimDuration::ZERO,
            nodes: vec![],
            counters: BTreeMap::new(),
        };
        assert_eq!(r.counter("missing"), 0.0);
        r.bump_counter("x", 2.0);
        r.bump_counter("x", 3.0);
        assert_eq!(r.counter("x"), 5.0);
        assert_eq!(r.gc_fraction(), 0.0);
        let _ = SimTime::ZERO; // keep import used
    }
}
