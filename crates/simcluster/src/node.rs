//! Per-node state and the context handed to simulated threads.

use simcore::{
    metrics, tracer, ByteSize, CostModel, EventLog, FaultInjector, LogMark, NodeId, SimDuration,
    SimError, SimResult, SimTime, SpaceId,
};
use simmem::{GcRecord, Heap, HeapConfig, HeapCounters};
use simstore::{Disk, FileId};

/// Default bound on transient-I/O retries. One above the injector's
/// default burst cap, so a default plan can never exhaust the budget.
pub const DEFAULT_IO_RETRIES: u32 = 5;

/// The state of one cluster node: clock, heap, disk, accounting.
#[derive(Debug)]
pub struct NodeState {
    /// This node's id.
    pub id: NodeId,
    /// Number of cores (the paper's nodes have 8).
    pub cores: usize,
    /// The node's virtual clock.
    pub now: SimTime,
    /// The simulated managed heap.
    pub heap: Heap,
    /// The simulated disk.
    pub disk: Disk,
    /// Cost model shared with heap/disk.
    pub cost: CostModel,
    /// Total stop-the-world GC time on this node.
    pub gc_time: SimDuration,
    /// Total wall-clock time spent computing (excludes GC pauses).
    pub compute_time: SimDuration,
    /// Total wall-clock time threads spent stalled on blocking disk reads.
    pub io_stall_time: SimDuration,
    /// Time series (heap occupancy, thread counts) for the figures.
    pub log: EventLog,
    /// GC records not yet drained by a controller (the ITask monitor).
    gc_pending: Vec<GcRecord>,
    /// When the (async-write) disk becomes free again.
    disk_free_at: SimTime,
}

impl NodeState {
    /// Creates a node with the given heap capacity and disk.
    pub fn new(id: NodeId, cores: usize, heap_capacity: ByteSize, disk_capacity: ByteSize) -> Self {
        let cost = CostModel::default();
        let mut heap = Heap::new(HeapConfig {
            cost,
            ..HeapConfig::with_capacity(heap_capacity)
        });
        heap.set_trace_node(id);
        NodeState {
            id,
            cores,
            now: SimTime::ZERO,
            heap,
            disk: Disk::new(id, disk_capacity, cost),
            cost,
            gc_time: SimDuration::ZERO,
            compute_time: SimDuration::ZERO,
            io_stall_time: SimDuration::ZERO,
            log: EventLog::new(),
            gc_pending: Vec::new(),
            disk_free_at: SimTime::ZERO,
        }
    }

    /// Allocates on the heap, converting GC pauses into stop-the-world
    /// clock advancement and queueing their records for the controller.
    pub fn alloc(&mut self, space: SpaceId, bytes: ByteSize) -> SimResult<()> {
        match self.heap.alloc(space, bytes, self.now) {
            Ok(outcome) => {
                self.absorb_pauses(&outcome.pauses);
                Ok(())
            }
            Err(simmem::HeapError::OutOfMemory { requested, free }) => {
                if tracer::is_enabled() {
                    tracer::emit(
                        Some(self.id),
                        self.heap.alloc_scope(),
                        self.now,
                        SimDuration::ZERO,
                        tracer::TraceData::Oom {
                            requested: requested.as_u64(),
                            free: free.as_u64(),
                        },
                    );
                }
                metrics::counter_add(Some(self.id), metrics::Metric::MemOom, self.now, 1);
                Err(SimError::OutOfMemory {
                    node: self.id,
                    requested,
                    free,
                })
            }
            Err(simmem::HeapError::NoSuchSpace(id)) => Err(SimError::Internal(format!(
                "allocation into released space {id}"
            ))),
        }
    }

    /// Runs a full collection now (used by the IRS after interrupts).
    pub fn force_full_gc(&mut self) -> GcRecord {
        let rec = self.heap.force_full_gc(self.now);
        self.absorb_pauses(std::slice::from_ref(&rec));
        rec
    }

    fn absorb_pauses(&mut self, pauses: &[GcRecord]) {
        for rec in pauses {
            self.now += rec.pause;
            self.gc_time += rec.pause;
            self.log
                .record("heap_used", self.now, rec.used_before.as_u64() as f64);
            self.log
                .record("heap_used", self.now, rec.used_after.as_u64() as f64);
            self.gc_pending.push(rec.clone());
        }
    }

    /// Drains GC records observed since the last drain (monitor input).
    pub fn drain_gc_records(&mut self) -> Vec<GcRecord> {
        std::mem::take(&mut self.gc_pending)
    }

    /// Writes `bytes` to disk *asynchronously* (background serialization
    /// threads in the paper): the node clock does not advance, but the
    /// disk stays busy, delaying subsequent blocking reads.
    pub fn disk_write_async(
        &mut self,
        label: impl Into<String>,
        bytes: ByteSize,
    ) -> SimResult<FileId> {
        let (id, io) = self.disk.write(label, bytes)?;
        let start = self.now.max(self.disk_free_at);
        self.disk_free_at = start + io;
        Ok(id)
    }

    /// [`NodeState::disk_write_async`] with bounded retry: transient
    /// faults back off exponentially (the device stays busy during the
    /// backoff) and the write is re-issued, up to `budget` attempts.
    /// Returns the file id and how many retries were needed.
    pub fn disk_write_retried(
        &mut self,
        label: &str,
        bytes: ByteSize,
        budget: u32,
    ) -> SimResult<(FileId, u32)> {
        let mut retries = 0u32;
        loop {
            match self.disk_write_async(label.to_string(), bytes) {
                Ok(id) => return Ok((id, retries)),
                Err(e) if e.is_transient() && retries + 1 < budget.max(1) => {
                    let backoff = self.io_backoff(retries);
                    self.disk_free_at = self.now.max(self.disk_free_at) + backoff;
                    retries += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads a file, returning the bytes read and the stall duration the
    /// *calling thread* must charge (wait for the disk to drain pending
    /// writes, then the read itself). The node clock is not advanced —
    /// only the reading thread stalls, other threads keep computing.
    pub fn disk_read_charged(&mut self, id: FileId) -> SimResult<(ByteSize, SimDuration)> {
        let (bytes, io) = self.disk.read(id)?;
        Ok((bytes, self.charge_disk_stall(io)))
    }

    /// [`NodeState::disk_read_charged`] plus checksum verification:
    /// corrupt content costs the full read and then fails with
    /// [`SimError::CorruptPartition`].
    pub fn disk_read_verified(&mut self, id: FileId) -> SimResult<(ByteSize, SimDuration)> {
        match self.disk.read_verified(id) {
            Ok((bytes, io)) => Ok((bytes, self.charge_disk_stall(io))),
            Err(SimError::CorruptPartition { node, file }) => {
                // The bytes were read (and paid for) before the
                // mismatch was noticed.
                let bytes = self
                    .disk
                    .file(id)
                    .map(|f| f.bytes)
                    .unwrap_or(ByteSize::ZERO);
                let io = self.cost.disk_read(bytes);
                self.charge_disk_stall(io);
                Err(SimError::CorruptPartition { node, file })
            }
            Err(e) => Err(e),
        }
    }

    /// [`NodeState::disk_read_verified`] with bounded retry for
    /// *transient* faults (corruption is not retried — the stored bytes
    /// will not get better; callers recover from lineage instead).
    /// Returns bytes, total stall including backoffs, and retries used.
    pub fn disk_read_retried(
        &mut self,
        id: FileId,
        budget: u32,
    ) -> SimResult<(ByteSize, SimDuration, u32)> {
        let mut retries = 0u32;
        let mut extra = SimDuration::ZERO;
        loop {
            match self.disk_read_verified(id) {
                Ok((bytes, stall)) => return Ok((bytes, stall + extra, retries)),
                Err(e) if e.is_transient() && retries + 1 < budget.max(1) => {
                    let backoff = self.io_backoff(retries);
                    self.io_stall_time += backoff;
                    extra += backoff;
                    retries += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Exponential virtual-time backoff: `latency × 2^attempt`.
    fn io_backoff(&self, attempt: u32) -> SimDuration {
        SimDuration::from_nanos(
            self.cost
                .disk_op_latency
                .as_nanos()
                .saturating_mul(1u64 << attempt.min(16)),
        )
    }

    fn charge_disk_stall(&mut self, io: SimDuration) -> SimDuration {
        let start = self.now.max(self.disk_free_at);
        let end = start + io;
        let stall = end.since(self.now);
        self.io_stall_time += stall;
        self.disk_free_at = end;
        stall
    }

    /// Routes this node's disk I/O through a fault injector.
    ///
    /// The node *owns* its injector (via the disk): with per-node
    /// instances of the same plan, fault schedules are keyed purely on
    /// `(seed, node, op, count)`, so a node draws the same verdicts it
    /// would have drawn from a cluster-shared injector regardless of how
    /// nodes interleave — the property the sharded executor relies on.
    pub fn install_injector(&mut self, injector: FaultInjector) {
        self.disk.install_injector(injector);
    }

    /// Records the current heap occupancy into the `heap_used` series.
    pub fn sample_heap(&mut self) {
        self.log
            .record("heap_used", self.now, self.heap.used().as_u64() as f64);
    }

    /// Snapshots every report-visible counter on this node. Taken by the
    /// sharded executor before each speculative round so an overshot
    /// round (a shard racing past another shard's failure) can be
    /// [`NodeState::rewind`]-ed away, keeping even failed-run reports
    /// byte-identical to the serial engine's.
    pub fn checkpoint(&self) -> NodeCheckpoint {
        NodeCheckpoint {
            now: self.now,
            gc_time: self.gc_time,
            compute_time: self.compute_time,
            io_stall_time: self.io_stall_time,
            disk_free_at: self.disk_free_at,
            gc_pending: self.gc_pending.len(),
            heap: self.heap.counters_mark(),
            log: self.log.mark(),
            injector: self.disk.injector().cloned(),
        }
    }

    /// Restores the counters captured by [`NodeState::checkpoint`].
    ///
    /// Heap contents and disk files are *not* restored — an aborted
    /// speculative round may leave them polluted, but nothing observes
    /// them after the abort (the engine stops at the failed round).
    pub fn rewind(&mut self, cp: &NodeCheckpoint) {
        self.now = cp.now;
        self.gc_time = cp.gc_time;
        self.compute_time = cp.compute_time;
        self.io_stall_time = cp.io_stall_time;
        self.disk_free_at = cp.disk_free_at;
        self.gc_pending.truncate(cp.gc_pending);
        self.heap.counters_rewind(&cp.heap);
        self.log.rewind(&cp.log);
        self.disk.restore_injector(cp.injector.clone());
    }
}

/// A snapshot of a node's report-visible counters (see
/// [`NodeState::checkpoint`]).
#[derive(Clone, Debug)]
pub struct NodeCheckpoint {
    now: SimTime,
    gc_time: SimDuration,
    compute_time: SimDuration,
    io_stall_time: SimDuration,
    disk_free_at: SimTime,
    gc_pending: usize,
    heap: HeapCounters,
    log: LogMark,
    injector: Option<FaultInjector>,
}

/// Execution context handed to a [`crate::work::Work`] step.
///
/// Tracks CPU consumed within the quantum; heap and disk access go
/// through the node so GC pauses and I/O stalls are accounted centrally.
pub struct WorkCx<'a> {
    node: &'a mut NodeState,
    quantum: SimDuration,
    used: SimDuration,
}

impl<'a> WorkCx<'a> {
    pub(crate) fn new(node: &'a mut NodeState, quantum: SimDuration) -> Self {
        WorkCx {
            node,
            quantum,
            used: SimDuration::ZERO,
        }
    }

    /// A context detached from the scheduler, for out-of-band work an
    /// engine performs on a node directly — e.g. running the interrupt
    /// path post-mortem to salvage instances off a crashed node.
    pub fn detached(node: &'a mut NodeState, quantum: SimDuration) -> Self {
        WorkCx::new(node, quantum)
    }

    /// The node this thread runs on.
    pub fn node(&mut self) -> &mut NodeState {
        self.node
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.node.now
    }

    /// The cost model in effect.
    pub fn cost(&self) -> CostModel {
        self.node.cost
    }

    /// CPU time still available in this quantum.
    pub fn remaining(&self) -> SimDuration {
        self.quantum.saturating_sub(self.used)
    }

    /// Whether the quantum is exhausted.
    pub fn out_of_quantum(&self) -> bool {
        self.remaining().is_zero()
    }

    /// Consumes `t` of CPU time (may overrun the quantum slightly; the
    /// scheduler accounts for actual usage).
    pub fn charge(&mut self, t: SimDuration) {
        self.used += t;
    }

    /// CPU consumed so far in this step.
    pub(crate) fn used(&self) -> SimDuration {
        self.used
    }

    /// Allocates heap bytes for this thread (GC pauses handled by node).
    pub fn alloc(&mut self, space: SpaceId, bytes: ByteSize) -> SimResult<()> {
        self.node.alloc(space, bytes)
    }

    /// Frees heap bytes (turns them into garbage).
    pub fn free(&mut self, space: SpaceId, bytes: ByteSize) -> ByteSize {
        self.node.heap.free(space, bytes)
    }

    /// Creates a heap space.
    pub fn create_space(&mut self, label: impl Into<String>) -> SpaceId {
        self.node.heap.create_space(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> NodeState {
        NodeState::new(NodeId(0), 8, ByteSize::mib(4), ByteSize::mib(64))
    }

    #[test]
    fn alloc_pauses_advance_clock_and_queue_records() {
        let mut n = node();
        let s = n.heap.create_space("s");
        // Fill well past the young generation (1MiB) with live data.
        for _ in 0..200 {
            n.alloc(s, ByteSize::kib(10)).unwrap();
        }
        assert!(n.gc_time > SimDuration::ZERO);
        assert_eq!(n.now.since(SimTime::ZERO), n.gc_time);
        let recs = n.drain_gc_records();
        assert!(!recs.is_empty());
        assert!(n.drain_gc_records().is_empty());
    }

    #[test]
    fn oom_is_tagged_with_node() {
        let mut n = node();
        let s = n.heap.create_space("s");
        let err = loop {
            if let Err(e) = n.alloc(s, ByteSize::kib(64)) {
                break e;
            }
        };
        match err {
            SimError::OutOfMemory { node, .. } => assert_eq!(node, NodeId(0)),
            other => panic!("expected OOM, got {other}"),
        }
    }

    #[test]
    fn async_writes_do_not_block_but_delay_reads() {
        let mut n = node();
        let before = n.now;
        let id = n.disk_write_async("spill", ByteSize::mib(32)).unwrap();
        assert_eq!(n.now, before, "async write must not advance the clock");
        let (bytes, stall) = n.disk_read_charged(id).unwrap();
        assert_eq!(bytes, ByteSize::mib(32));
        assert_eq!(n.now, before, "the node clock is the caller's to advance");
        // The read had to wait for the in-flight write plus its own time.
        let write_t = n.cost.disk_write(ByteSize::mib(32));
        let read_t = n.cost.disk_read(ByteSize::mib(32));
        assert_eq!(stall, write_t + read_t);
        assert_eq!(n.io_stall_time, write_t + read_t);
    }

    #[test]
    fn disk_full_surfaces_as_error() {
        let mut n = NodeState::new(NodeId(1), 8, ByteSize::mib(4), ByteSize::kib(10));
        let err = n.disk_write_async("x", ByteSize::mib(1)).unwrap_err();
        assert!(matches!(err, SimError::DiskFull { .. }));
    }

    #[test]
    fn workcx_tracks_quantum() {
        let mut n = node();
        let mut cx = WorkCx::new(&mut n, SimDuration::from_micros(500));
        assert_eq!(cx.remaining(), SimDuration::from_micros(500));
        cx.charge(SimDuration::from_micros(200));
        assert_eq!(cx.remaining(), SimDuration::from_micros(300));
        cx.charge(SimDuration::from_micros(400));
        assert!(cx.out_of_quantum());
        assert_eq!(cx.used(), SimDuration::from_micros(600));
    }
}
