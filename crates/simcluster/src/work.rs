//! The simulated-thread interface.

use simcore::SimError;

use crate::node::WorkCx;

/// What a simulated thread did with its scheduling quantum.
#[derive(Debug)]
pub enum StepOutcome {
    /// Made progress; schedule again next round.
    Ran,
    /// Blocked on something external (no CPU consumed); poll next round.
    Waiting,
    /// Completed successfully; the thread slot is retired.
    Finished,
    /// Died with an error (e.g. an OME). The slot is retired; the engine
    /// driving the node decides whether this fails the job (Hyracks),
    /// retries the attempt (Hadoop/YARN), or was an orderly ITask
    /// interrupt (which uses `Finished`, not `Failed`).
    Failed(SimError),
}

/// The body of a simulated thread.
///
/// A `Work` implementation is called once per scheduling round with a
/// [`WorkCx`] granting access to the node's clock, heap and disk. It
/// should consume up to its quantum of CPU ([`WorkCx::remaining`]) and
/// return; the scheduler converts per-thread CPU usage into node
/// wall-clock advancement under processor sharing.
///
/// `Work` is `Send` so whole nodes (and the thread bodies they carry)
/// can be shipped to shard workers by the lockstep executor
/// ([`crate::shard::ShardExecutor`]). Bodies still never run
/// concurrently with anything that aliases their node: a node is owned
/// by exactly one shard per round.
pub trait Work: Send {
    /// Runs for (up to) one quantum.
    fn step(&mut self, cx: &mut WorkCx<'_>) -> StepOutcome;

    /// Debug label shown in reports (e.g. `"map[part3]"`).
    fn label(&self) -> String;

    /// Downcast hook for crash recovery: implementations that carry
    /// salvageable state (ITask workers with partially processed
    /// partitions) return `Some(self)` so the engine can extract it
    /// after a node crash. The default — no salvageable state.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}
