//! Deterministic lockstep shard executor.
//!
//! Splits one run's node simulators across a fixed pool of worker
//! threads while keeping every observable byte — stdout, trace JSONL,
//! profiler counters — identical to the serial round-robin loop at any
//! shard count (DESIGN.md §5f).
//!
//! The execution model is conservative parallel discrete-event
//! simulation in its simplest shape: nodes only interact at driver-side
//! barriers (shuffles, clock syncs, admission decisions), so within one
//! scheduling *round* every node's step is independent. The executor
//! advances all nodes in lockstep rounds: ship each node to its shard,
//! run one round per node in parallel, then commit the results at a
//! barrier **in node order** — exactly the order the serial loop used.
//!
//! Three mechanisms make the merge byte-identical rather than merely
//! equivalent:
//!
//! 1. **Stream-namespaced event ids.** Each node round runs under a
//!    tracer *stream overlay* ([`simcore::tracer::stream_begin`]):
//!    events get ids `(stream << 32) | seq` where stream `n + 1` belongs
//!    to node `n` and the per-node `seq` cursor lives in the
//!    [`Cluster`]. Ids therefore encode *which node emitted, at which
//!    point in its own logical progress* — invariant under shard count —
//!    and the run buffer's `(time, node, id)` sort reproduces one
//!    canonical order.
//! 2. **Profiler segments.** Worker rounds capture counter deltas into
//!    thread-local [`simcore::prof::ProfSegment`]s, applied at the
//!    barrier in node order (sums are commutative; capture exists so
//!    discarded rounds leave no residue).
//! 3. **Speculation rewind.** Under fail-fast driving (batch engines
//!    abort a run on the first thread failure), the serial loop never
//!    ran nodes after the failing one. Shards run them speculatively,
//!    so each fail-fast round checkpoints every node first
//!    ([`NodeSim::checkpoint`]); when node `k` fails, nodes after `k`
//!    are rewound and their trace/profiler output is discarded.
//!
//! With `shards() == 1` (the default) no worker threads exist: rounds
//! run inline on the driver thread, still under stream overlays so the
//! emitted bytes match the pooled path exactly.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use simcore::{prof, tracer, ByteSize, NodeId};

use crate::cluster::Cluster;
use crate::node::NodeState;
use crate::sched::{NodeSim, NodeSimCheckpoint, RoundReport};

/// Process-wide shard count, set once by the bench/CLI layer
/// (`--shards N` / `ITASK_BENCH_SHARDS`). Default 1 = serial.
static SHARDS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-wide shard count (values below 1 clamp to 1).
pub fn set_shards(n: usize) {
    SHARDS.store(n.max(1), Ordering::Relaxed);
}

/// The process-wide shard count.
pub fn shards() -> usize {
    SHARDS.load(Ordering::Relaxed)
}

/// The tracer stream owned by a node (stream 0 is the driver).
fn stream_of(node: NodeId) -> u32 {
    node.0 + 1
}

/// Fans generic driver-side work out across scoped worker threads,
/// honouring the process-wide shard count, and commits results **in
/// part order**.
///
/// The generic sibling of [`ShardExecutor::run_round`] for work that is
/// not a node round — e.g. per-shard admission pops in simserve. Part
/// `i` runs on worker `i % shards()` (the same position-based
/// assignment the node pool uses, so placement depends only on the part
/// list, never on timing), and the returned vector is indexed by part
/// regardless of completion order, so output is byte-identical at any
/// shard count. With `shards() <= 1` or a single part, everything runs
/// inline on the caller's thread.
///
/// Closures run on worker threads and must therefore not emit tracer
/// events or profiler counters — those belong to the driver thread.
/// Batch any such output into the returned value and emit it after the
/// merge.
pub fn run_parts<T, R, F>(parts: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    run_parts_with(shards(), parts, f)
}

/// [`run_parts`] with an explicit worker count instead of the
/// process-wide setting (tests and callers that manage their own
/// parallelism).
pub fn run_parts_with<T, R, F>(workers: usize, parts: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let workers = workers.min(parts.len());
    if workers <= 1 {
        return parts
            .into_iter()
            .enumerate()
            .map(|(i, p)| f(i, p))
            .collect();
    }
    let mut buckets: Vec<Vec<(usize, T)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, p) in parts.into_iter().enumerate() {
        buckets[i % workers].push((i, p));
    }
    let total: usize = buckets.iter().map(Vec::len).sum();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(total);
    slots.resize_with(total, || None);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(i, p)| (i, f(i, p)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("run_parts worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every part reported"))
        .collect()
}

/// Outcome of one lockstep round across a set of nodes.
#[derive(Debug, Default)]
pub struct RoundRun {
    /// Per-node round reports in node order. Under fail-fast the list
    /// ends at the first node that reported a failure (later nodes did
    /// not observably run, matching the serial loop).
    pub reports: Vec<(NodeId, RoundReport)>,
    /// Whether fail-fast aborted the round at the last report.
    pub aborted: bool,
}

impl RoundRun {
    /// The first `(node, thread failures)` of the round, if any.
    pub fn first_failure(&self) -> Option<(NodeId, &RoundReport)> {
        self.reports
            .iter()
            .find(|(_, r)| !r.failed.is_empty())
            .map(|(n, r)| (*n, r))
    }
}

/// One node shipped to a shard worker for one round.
struct Entry {
    /// Position in this round's `nodes` slice (commit order).
    pos: usize,
    node: NodeId,
    sim: NodeSim,
    /// Stream cursor before the round.
    seq: u64,
    /// Take a pre-round checkpoint (fail-fast rounds only).
    checkpoint: bool,
}

/// A worker's result for one node round.
struct Done {
    pos: usize,
    node: NodeId,
    sim: NodeSim,
    report: RoundReport,
    /// Stream cursor after the round.
    seq_after: u64,
    events: Vec<tracer::Event>,
    prof: prof::ProfSegment,
    checkpoint: Option<NodeSimCheckpoint>,
}

fn worker_loop(rx: Receiver<Vec<Entry>>, tx: Sender<Vec<Done>>) {
    while let Ok(batch) = rx.recv() {
        let mut out = Vec::with_capacity(batch.len());
        for mut e in batch {
            let checkpoint = e.checkpoint.then(|| e.sim.checkpoint());
            tracer::stream_begin(stream_of(e.node), e.seq);
            prof::segment_begin();
            let report = e.sim.run_round();
            let seg = prof::segment_take();
            let (seq_after, events) = tracer::stream_take(e.seq);
            out.push(Done {
                pos: e.pos,
                node: e.node,
                sim: e.sim,
                report,
                seq_after,
                events,
                prof: seg,
                checkpoint,
            });
        }
        if tx.send(out).is_err() {
            break;
        }
    }
}

/// Persistent worker threads; node at round position `i` goes to shard
/// `i % shards`, so the assignment depends only on the runnable set,
/// never on timing.
struct ShardPool {
    txs: Vec<Sender<Vec<Entry>>>,
    rx: Receiver<Vec<Done>>,
    handles: Vec<JoinHandle<()>>,
}

impl ShardPool {
    fn new(shards: usize) -> Self {
        let (done_tx, done_rx) = channel();
        let mut txs = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for i in 0..shards {
            let (tx, rx) = channel::<Vec<Entry>>();
            let done = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("itask-shard-{i}"))
                .spawn(move || worker_loop(rx, done))
                .expect("spawn shard worker");
            txs.push(tx);
            handles.push(handle);
        }
        ShardPool {
            txs,
            rx: done_rx,
            handles,
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // Closing the job channels ends the worker loops.
        self.txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Drives lockstep rounds for one engine run.
///
/// Engines create one executor per drive loop and call
/// [`ShardExecutor::run_round`] with the round's runnable nodes. The
/// executor owns the worker pool (spawned lazily on the first
/// multi-shard round) and the placeholder simulators swapped into the
/// cluster while real ones ride a channel.
pub struct ShardExecutor {
    shards: usize,
    pool: Option<ShardPool>,
    /// Pre-built placeholders, indexed by node; `None` while the slot's
    /// placeholder sits in the cluster during a round.
    spares: Vec<Option<NodeSim>>,
}

impl Default for ShardExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardExecutor {
    /// An executor honouring the process-wide [`shards`] setting.
    pub fn new() -> Self {
        Self::with_shards(shards())
    }

    /// An executor with an explicit shard count (tests).
    pub fn with_shards(shards: usize) -> Self {
        ShardExecutor {
            shards: shards.max(1),
            pool: None,
            spares: Vec::new(),
        }
    }

    /// The shard count this executor drives.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Runs one lockstep round over `nodes` (each steps once), committing
    /// reports, trace events and profiler deltas in node order.
    ///
    /// With `fail_fast`, the round aborts at the first node whose report
    /// carries a thread failure: later nodes are rewound (pooled path)
    /// or never run (inline path), reproducing the serial loop's
    /// stop-at-first-failure bytes.
    pub fn run_round(
        &mut self,
        cluster: &mut Cluster,
        nodes: &[NodeId],
        fail_fast: bool,
    ) -> RoundRun {
        if self.shards <= 1 || nodes.len() <= 1 {
            Self::run_round_inline(cluster, nodes, fail_fast)
        } else {
            self.run_round_pooled(cluster, nodes, fail_fast)
        }
    }

    /// One node round on the driver thread, under the node's stream
    /// overlay. Also the building block for legacy serial loops (crash
    /// plans force these) so their event ids match the executor paths.
    pub fn run_node_round(cluster: &mut Cluster, node: NodeId) -> RoundReport {
        let seq = cluster.stream_seq(node);
        tracer::stream_begin(stream_of(node), seq);
        let report = cluster.sim(node).run_round();
        let (next, events) = tracer::stream_take(seq);
        cluster.set_stream_seq(node, next);
        tracer::absorb(events);
        report
    }

    /// One round for a standalone simulator outside any [`Cluster`] (the
    /// Hadoop single-JVM attempt loop). The caller owns the stream
    /// cursor.
    pub fn run_solo_round(sim: &mut NodeSim, seq: &mut u64) -> RoundReport {
        let stream = stream_of(sim.node().id);
        tracer::stream_begin(stream, *seq);
        let report = sim.run_round();
        let (next, events) = tracer::stream_take(*seq);
        *seq = next;
        tracer::absorb(events);
        report
    }

    fn run_round_inline(cluster: &mut Cluster, nodes: &[NodeId], fail_fast: bool) -> RoundRun {
        let mut run = RoundRun {
            reports: Vec::with_capacity(nodes.len()),
            aborted: false,
        };
        for &node in nodes {
            let report = Self::run_node_round(cluster, node);
            let failed = !report.failed.is_empty();
            run.reports.push((node, report));
            if fail_fast && failed {
                run.aborted = true;
                break;
            }
        }
        run
    }

    fn run_round_pooled(
        &mut self,
        cluster: &mut Cluster,
        nodes: &[NodeId],
        fail_fast: bool,
    ) -> RoundRun {
        let pool = self.pool.get_or_insert_with(|| ShardPool::new(self.shards));
        let max_idx = nodes.iter().map(|n| n.as_usize()).max().unwrap_or(0);
        while self.spares.len() <= max_idx {
            let id = NodeId(self.spares.len() as u32);
            self.spares.push(Some(NodeSim::new(NodeState::new(
                id,
                1,
                ByteSize::ZERO,
                ByteSize::ZERO,
            ))));
        }

        // Ship each node to its shard: swap the placeholder in, move the
        // real simulator out through the job channel.
        let mut batches: Vec<Vec<Entry>> = (0..self.shards).map(|_| Vec::new()).collect();
        for (pos, &node) in nodes.iter().enumerate() {
            let mut sim = self.spares[node.as_usize()]
                .take()
                .expect("spare in flight");
            cluster.swap_sim(node, &mut sim);
            batches[pos % self.shards].push(Entry {
                pos,
                node,
                sim,
                seq: cluster.stream_seq(node),
                checkpoint: fail_fast,
            });
        }
        let mut dispatched = 0;
        for (shard, batch) in batches.into_iter().enumerate() {
            if !batch.is_empty() {
                pool.txs[shard].send(batch).expect("shard worker alive");
                dispatched += 1;
            }
        }

        // Barrier: collect every shard's results, then commit in node
        // order so the merge is independent of completion timing.
        let mut done: Vec<Option<Done>> = nodes.iter().map(|_| None).collect();
        for _ in 0..dispatched {
            let batch = pool.rx.recv().expect("shard worker alive");
            for d in batch {
                let pos = d.pos;
                done[pos] = Some(d);
            }
        }

        let mut run = RoundRun {
            reports: Vec::with_capacity(nodes.len()),
            aborted: false,
        };
        for slot in &mut done {
            let d = slot.take().expect("every position reported");
            let node = d.node;
            let mut sim = d.sim;
            cluster.swap_sim(node, &mut sim);
            self.spares[node.as_usize()] = Some(sim);
            if run.aborted {
                // Overshoot: under serial fail-fast this node never ran
                // this round. Rewind it and drop its output.
                let cp = d.checkpoint.expect("fail-fast round checkpoints");
                cluster.sim(node).rewind(&cp);
                continue;
            }
            cluster.set_stream_seq(node, d.seq_after);
            tracer::absorb(d.events);
            prof::segment_apply(&d.prof);
            let failed = !d.report.failed.is_empty();
            run.reports.push((node, d.report));
            if fail_fast && failed {
                run.aborted = true;
            }
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::node::WorkCx;
    use crate::work::{StepOutcome, Work};
    use simcore::{SimError, SpaceId};

    /// Burns CPU over `tuples` synthetic tuples, allocating per tuple;
    /// optionally fails after a fixed number of tuples.
    struct Crunch {
        space: Option<SpaceId>,
        tuples: u64,
        fail_after: Option<u64>,
        processed: u64,
    }

    impl Work for Crunch {
        fn step(&mut self, cx: &mut WorkCx<'_>) -> StepOutcome {
            let space = match self.space {
                Some(s) => s,
                None => {
                    let s = cx.create_space("crunch");
                    self.space = Some(s);
                    s
                }
            };
            let per_tuple = cx.cost().tuple_cost(ByteSize(64));
            while self.tuples > 0 && !cx.out_of_quantum() {
                if self.fail_after.is_some_and(|n| self.processed >= n) {
                    return StepOutcome::Failed(SimError::Internal("planned failure".into()));
                }
                cx.charge(per_tuple);
                if let Err(e) = cx.alloc(space, ByteSize(48)) {
                    return StepOutcome::Failed(e);
                }
                self.tuples -= 1;
                self.processed += 1;
            }
            if self.tuples == 0 {
                StepOutcome::Finished
            } else {
                StepOutcome::Ran
            }
        }

        fn label(&self) -> String {
            "crunch".into()
        }
    }

    fn crunch(tuples: u64) -> Box<dyn Work> {
        Box::new(Crunch {
            space: None,
            tuples,
            fail_after: None,
            processed: 0,
        })
    }

    fn crunch_failing(tuples: u64, fail_after: u64) -> Box<dyn Work> {
        Box::new(Crunch {
            space: None,
            tuples,
            fail_after: Some(fail_after),
            processed: 0,
        })
    }

    fn cluster(nodes: usize) -> Cluster {
        Cluster::new(ClusterConfig {
            nodes,
            cores: 2,
            heap_per_node: ByteSize::mib(8),
            disk_per_node: ByteSize::mib(64),
            ..Default::default()
        })
    }

    /// Runs a workload to completion and returns a determinism
    /// fingerprint: per-node `(final clock ns, compute ns, minor GCs)`
    /// plus the flattened per-round report summary.
    fn drive(shards: usize, fail_node: Option<usize>) -> (Vec<(u128, u128, u64)>, Vec<String>) {
        const NODES: usize = 5;
        let mut c = cluster(NODES);
        for i in 0..NODES {
            let sim = c.sim(NodeId(i as u32));
            // Skewed load: node i gets i+1 threads.
            for _ in 0..=i {
                sim.spawn(crunch(4_000 + 700 * i as u64));
            }
            if fail_node == Some(i) {
                sim.spawn(crunch_failing(10_000, 2_500));
            }
        }
        let mut exec = ShardExecutor::with_shards(shards);
        let mut rounds = Vec::new();
        loop {
            let runnable: Vec<NodeId> = (0..NODES as u32)
                .map(NodeId)
                .filter(|&n| c.sim(n).live_count() > 0)
                .collect();
            if runnable.is_empty() {
                break;
            }
            let run = exec.run_round(&mut c, &runnable, true);
            for (n, r) in &run.reports {
                rounds.push(format!(
                    "{}:{}/{}f{}e{}",
                    n.0,
                    r.stepped,
                    r.wall.as_nanos(),
                    r.finished.len(),
                    r.failed.len()
                ));
            }
            if run.first_failure().is_some() {
                break;
            }
        }
        let fingerprint = (0..NODES as u32)
            .map(|i| {
                let n = c.sim(NodeId(i)).node();
                (
                    n.now.as_nanos() as u128,
                    n.compute_time.as_nanos() as u128,
                    n.heap.stats().minor_count,
                )
            })
            .collect();
        (fingerprint, rounds)
    }

    #[test]
    fn pooled_rounds_match_serial_exactly() {
        let serial = drive(1, None);
        for shards in [2, 3, 4, 8] {
            let pooled = drive(shards, None);
            assert_eq!(serial.0, pooled.0, "state diverged at {shards} shards");
            assert_eq!(serial.1, pooled.1, "reports diverged at {shards} shards");
        }
    }

    #[test]
    fn fail_fast_overshoot_is_rewound() {
        // Node 2 fails mid-run; nodes 3 and 4 run that round
        // speculatively under shards>1 and must be rewound to the bytes
        // the serial abort produced.
        let serial = drive(1, Some(2));
        for shards in [2, 4] {
            let pooled = drive(shards, Some(2));
            assert_eq!(serial.0, pooled.0, "state diverged at {shards} shards");
            assert_eq!(serial.1, pooled.1, "reports diverged at {shards} shards");
        }
    }

    #[test]
    fn first_failure_surfaces_the_failing_node() {
        let mut c = cluster(2);
        c.sim(NodeId(1)).spawn(crunch_failing(100, 0));
        c.sim(NodeId(0)).spawn(crunch(100));
        let mut exec = ShardExecutor::with_shards(2);
        let nodes = [NodeId(0), NodeId(1)];
        let run = exec.run_round(&mut c, &nodes, true);
        let (node, report) = run.first_failure().expect("failure reported");
        assert_eq!(node, NodeId(1));
        assert_eq!(report.failed.len(), 1);
        assert!(run.aborted);
    }

    #[test]
    fn checkpoint_rewind_restores_round_state() {
        let mut c = cluster(1);
        let n = NodeId(0);
        c.sim(n).spawn(crunch(50_000));
        // Advance a bit so the checkpoint captures non-trivial state.
        for _ in 0..10 {
            c.sim(n).run_round();
        }
        let cp = c.sim(n).checkpoint();
        let now = c.sim(n).node().now;
        let compute = c.sim(n).node().compute_time;
        let minors = c.sim(n).node().heap.stats().minor_count;
        for _ in 0..25 {
            c.sim(n).run_round();
        }
        assert!(c.sim(n).node().now > now);
        c.sim(n).rewind(&cp);
        assert_eq!(c.sim(n).node().now, now);
        assert_eq!(c.sim(n).node().compute_time, compute);
        assert_eq!(c.sim(n).node().heap.stats().minor_count, minors);
    }

    #[test]
    fn global_shard_setting_round_trips() {
        assert!(shards() >= 1);
        set_shards(0);
        assert_eq!(shards(), 1);
        set_shards(3);
        assert_eq!(shards(), 3);
        set_shards(1);
    }

    #[test]
    fn run_parts_commits_in_part_order_at_any_shard_count() {
        // The inline path (shards=1) is the reference; pooled runs must
        // return the same vector. Work is skewed so completion order
        // differs from part order under real parallelism.
        let work = |i: usize, x: u64| -> u64 {
            let mut acc = x;
            for k in 0..(1 + (i as u64 % 3)) * 10_000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            acc ^ (i as u64)
        };
        let parts: Vec<u64> = (0..17u64).collect();
        let serial = run_parts_with(1, parts.clone(), work);
        for n in [2, 4, 8] {
            assert_eq!(
                run_parts_with(n, parts.clone(), work),
                serial,
                "diverged at {n} workers"
            );
        }
    }

    #[test]
    fn run_parts_handles_empty_and_single() {
        assert_eq!(
            run_parts_with(4, Vec::<u64>::new(), |_, x| x),
            Vec::<u64>::new()
        );
        assert_eq!(run_parts_with(4, vec![9u64], |i, x| x + i as u64), vec![9]);
    }
}
