//! The cluster: a set of node simulators plus the shared fabric and
//! block store.
//!
//! Fault injection is *split by owner*: every node's disk owns a
//! private [`FaultInjector`] instance, the fabric owns one, and the
//! cluster keeps a driver-side one for crash scheduling. All are built
//! from the same [`FaultPlan`], and because verdicts are keyed purely
//! on `(seed, node, op, count)` the split draws exactly the schedule a
//! single shared injector would — but without any `Rc<RefCell>` shared
//! state, so node simulators can move across shard threads.

use simcore::{
    ByteSize, CostModel, FaultInjector, FaultPlan, FaultStats, NodeId, SimDuration, SimTime,
};
use simnet::Fabric;
use simstore::{BlockStore, BlockStoreConfig};

use crate::node::NodeState;
use crate::report::{JobOutcome, JobReport, NodeReport};
use crate::sched::NodeSim;
use crate::work::Work;

/// Cluster sizing. Defaults mirror the paper's testbed at 1/1024 scale:
/// 10 worker nodes (11 minus the master), 8 cores each, 12 GB heaps
/// (12 MiB here), SSD storage and a 128 MB (128 KiB) block size.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub nodes: usize,
    /// Cores per node.
    pub cores: usize,
    /// Managed-heap capacity per node.
    pub heap_per_node: ByteSize,
    /// Disk capacity per node.
    pub disk_per_node: ByteSize,
    /// Block size of the distributed store.
    pub block_size: ByteSize,
    /// Replication factor of the distributed store.
    pub replication: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 10,
            cores: 8,
            heap_per_node: ByteSize::mib(12),
            disk_per_node: ByteSize::mib(2048),
            block_size: ByteSize::kib(128),
            replication: 3,
        }
    }
}

impl ClusterConfig {
    /// Same testbed with a different per-node heap (Figure 11's sweep).
    pub fn with_heap(mut self, heap: ByteSize) -> Self {
        self.heap_per_node = heap;
        self
    }
}

/// A running cluster.
pub struct Cluster {
    cfg: ClusterConfig,
    sims: Vec<NodeSim>,
    fabric: Fabric,
    store: BlockStore,
    injector: Option<FaultInjector>,
    /// Next per-node trace-stream sequence numbers (tracer stream `n+1`
    /// belongs to node `n`; stream 0 is the driver). The shard executor
    /// reads and advances these so event ids stay identical at every
    /// shard count — ids encode *which node emitted, at which point in
    /// its own logical progress*, not global arrival order.
    stream_seqs: Vec<u64>,
}

impl Cluster {
    /// Builds a cluster from the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero nodes or zero cores.
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.nodes > 0, "cluster needs nodes");
        assert!(cfg.cores > 0, "nodes need cores");
        let cost = CostModel::default();
        let sims = (0..cfg.nodes)
            .map(|i| {
                NodeSim::new(NodeState::new(
                    NodeId(i as u32),
                    cfg.cores,
                    cfg.heap_per_node,
                    cfg.disk_per_node,
                ))
            })
            .collect();
        let fabric = Fabric::new(cfg.nodes, cost);
        let store = BlockStore::new(BlockStoreConfig {
            block_size: cfg.block_size,
            replication: cfg.replication,
            nodes: cfg.nodes,
        });
        let nodes = cfg.nodes;
        Cluster {
            cfg,
            sims,
            fabric,
            store,
            injector: None,
            stream_seqs: vec![0; nodes],
        }
    }

    /// Arms a fault plan: every node's disk gets its *own* injector
    /// instance of the plan, the fabric gets one, and the cluster keeps
    /// a driver-side one for crash scheduling. Because verdicts are
    /// keyed purely on `(seed, node, op, count)`, the per-owner split
    /// draws the same deterministic schedule a single shared injector
    /// would.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        for sim in &mut self.sims {
            sim.node_mut()
                .install_injector(FaultInjector::new(plan.clone()));
        }
        self.fabric
            .install_injector(FaultInjector::new(plan.clone()));
        self.injector = Some(FaultInjector::new(plan));
    }

    /// Whether a fault plan has been armed.
    pub fn faults_armed(&self) -> bool {
        self.injector.is_some()
    }

    /// Whether `node` still has a scheduled-but-unfired crash.
    ///
    /// Engines use this to classify crash-free *windows*: a
    /// [`Cluster::poll_crash`] on any other node is a no-op, so
    /// stretches of crash-free nodes run on the lockstep shard executor
    /// and only the (rare) crash-pending node needs the serial
    /// round-then-poll interleaving. Once a node's crashes have all
    /// fired it re-joins the shardable set (though a crashed node is
    /// excluded from rounds anyway).
    pub fn crash_pending(&self, node: NodeId) -> bool {
        self.injector
            .as_ref()
            .is_some_and(|inj| inj.crash_pending(node))
    }

    /// The driver-side fault injector, if a plan was armed (crash
    /// state: [`FaultInjector::is_down`], [`FaultInjector::down_nodes`]).
    pub fn driver_injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Fires any scheduled crash whose instant `node`'s clock has
    /// reached: threads die, the disk is purged, the node goes down.
    /// Returns the salvaged `Work` bodies (empty if no crash fired).
    pub fn poll_crash(&mut self, node: NodeId) -> Vec<Box<dyn Work>> {
        let due = match &mut self.injector {
            Some(inj) => {
                let now = self.sims[node.as_usize()].node().now;
                inj.crash_due(node, now)
            }
            None => false,
        };
        if due {
            self.sims[node.as_usize()].crash()
        } else {
            Vec::new()
        }
    }

    /// Injected-fault counters summed across every injector instance
    /// (per-node disks, fabric, driver). Each owner only accrues its
    /// own fault kinds, so the sum equals what the old cluster-shared
    /// injector reported.
    pub fn fault_stats(&self) -> FaultStats {
        let mut total = self
            .injector
            .as_ref()
            .map(|inj| inj.stats())
            .unwrap_or_default();
        for sim in &self.sims {
            let s = sim.node().disk.injector_stats();
            total.transient_reads += s.transient_reads;
            total.transient_writes += s.transient_writes;
            total.corrupted_writes += s.corrupted_writes;
        }
        let net = self.fabric.injector_stats();
        total.delayed_transfers += net.delayed_transfers;
        total.severed_transfers += net.severed_transfers;
        total
    }

    /// Nodes still up (crashed nodes excluded).
    pub fn live_nodes(&self) -> Vec<NodeId> {
        self.sims
            .iter()
            .filter(|s| !s.is_crashed())
            .map(|s| s.node().id)
            .collect()
    }

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.sims.len()
    }

    /// The node simulators.
    pub fn sims(&mut self) -> &mut [NodeSim] {
        &mut self.sims
    }

    /// One node simulator.
    pub fn sim(&mut self, node: NodeId) -> &mut NodeSim {
        &mut self.sims[node.as_usize()]
    }

    /// Next trace-stream sequence number for `node` (see `stream_seqs`).
    pub fn stream_seq(&self, node: NodeId) -> u64 {
        self.stream_seqs[node.as_usize()]
    }

    /// Advances `node`'s trace-stream cursor after a harvested round.
    pub fn set_stream_seq(&mut self, node: NodeId, next: u64) {
        self.stream_seqs[node.as_usize()] = next;
    }

    /// Swaps `node`'s simulator with `other` — how the shard executor
    /// ships a node to a worker thread (swap a placeholder in, move the
    /// real simulator out through a channel, swap back at the barrier).
    pub fn swap_sim(&mut self, node: NodeId, other: &mut NodeSim) {
        std::mem::swap(&mut self.sims[node.as_usize()], other);
    }

    /// The network fabric.
    pub fn fabric(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    /// The distributed block store.
    pub fn store(&mut self) -> &mut BlockStore {
        &mut self.store
    }

    /// Read-only block store access.
    pub fn store_ref(&self) -> &BlockStore {
        &self.store
    }

    /// The cluster-wide clock: the slowest node's time.
    pub fn elapsed(&self) -> SimDuration {
        self.sims
            .iter()
            .map(|s| s.node().now.since(SimTime::ZERO))
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Phase barrier: advances every node's clock to the cluster maximum
    /// plus `extra` (e.g. a shuffle transfer time).
    pub fn sync_clocks(&mut self, extra: SimDuration) {
        let target = self
            .sims
            .iter()
            .map(|s| s.node().now)
            .max()
            .unwrap_or(SimTime::ZERO)
            + extra;
        for sim in &mut self.sims {
            let n = sim.node_mut();
            if n.now < target {
                n.now = target;
            }
        }
    }

    /// Free-heap ratio of one node: effective free bytes (capacity minus
    /// live set — garbage is reclaimable) over capacity, in `[0, 1]`.
    pub fn free_heap_ratio(&self, node: NodeId) -> f64 {
        let n = self.sims[node.as_usize()].node();
        let cap = n.heap.capacity().as_u64();
        if cap == 0 {
            return 0.0;
        }
        n.heap.effective_free().as_u64() as f64 / cap as f64
    }

    /// The tightest free-heap ratio across live nodes (1.0 for an empty
    /// cluster) — what a memory-aware admission controller gates on.
    pub fn min_free_heap_ratio(&self) -> f64 {
        self.sims
            .iter()
            .filter(|s| !s.is_crashed())
            .map(|s| {
                let n = s.node();
                let cap = n.heap.capacity().as_u64().max(1);
                n.heap.effective_free().as_u64() as f64 / cap as f64
            })
            .fold(1.0_f64, f64::min)
    }

    /// [`min_free_heap_ratio`](Cluster::min_free_heap_ratio) restricted
    /// to the given nodes (1.0 when none of them are live) — the
    /// per-shard memory gate for sharded admission.
    pub fn min_free_heap_ratio_of(&self, nodes: &[NodeId]) -> f64 {
        nodes
            .iter()
            .map(|&id| &self.sims[id.as_usize()])
            .filter(|s| !s.is_crashed())
            .map(|s| {
                let n = s.node();
                let cap = n.heap.capacity().as_u64().max(1);
                n.heap.effective_free().as_u64() as f64 / cap as f64
            })
            .fold(1.0_f64, f64::min)
    }

    /// Total live threads across live nodes (all jobs).
    pub fn total_live_threads(&self) -> usize {
        self.sims
            .iter()
            .filter(|s| !s.is_crashed())
            .map(|s| s.live_count())
            .sum()
    }

    /// Advances every live node's clock to at least `target` (no-op for
    /// nodes already past it). A job service uses this to jump an idle
    /// cluster to the next client arrival instant.
    pub fn advance_clocks_to(&mut self, target: SimTime) {
        for sim in &mut self.sims {
            if sim.is_crashed() {
                continue;
            }
            let n = sim.node_mut();
            if n.now < target {
                n.now = target;
            }
        }
    }

    /// Builds a job report from the current node states.
    pub fn report(&self, outcome: JobOutcome) -> JobReport {
        let nodes: Vec<NodeReport> = self
            .sims
            .iter()
            .map(|s| {
                let n = s.node();
                NodeReport {
                    node: n.id,
                    elapsed: n.now.since(SimTime::ZERO),
                    gc_time: n.gc_time,
                    compute_time: n.compute_time,
                    io_stall_time: n.io_stall_time,
                    peak_heap: n.heap.peak_used(),
                    minor_gcs: n.heap.stats().minor_count,
                    full_gcs: n.heap.stats().full_count,
                    useless_gcs: n.heap.stats().useless_count,
                    log: n.log.clone(),
                }
            })
            .collect();
        let mut report = JobReport {
            outcome,
            elapsed: self.elapsed(),
            nodes,
            counters: std::collections::BTreeMap::new(),
        };
        if self.injector.is_some() {
            let s = self.fault_stats();
            report.bump_counter("faults_transient_reads", s.transient_reads as f64);
            report.bump_counter("faults_transient_writes", s.transient_writes as f64);
            report.bump_counter("faults_corrupted_writes", s.corrupted_writes as f64);
            report.bump_counter("faults_delayed_transfers", s.delayed_transfers as f64);
            report.bump_counter("faults_severed_transfers", s.severed_transfers as f64);
            report.bump_counter("faults_crashes", s.crashes as f64);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_scaled_testbed() {
        let c = Cluster::new(ClusterConfig::default());
        assert_eq!(c.node_count(), 10);
        assert_eq!(c.config().heap_per_node, ByteSize::mib(12));
    }

    #[test]
    fn sync_clocks_is_a_barrier() {
        let mut c = Cluster::new(ClusterConfig {
            nodes: 3,
            ..Default::default()
        });
        c.sim(NodeId(1)).node_mut().now += SimDuration::from_secs(5);
        c.sync_clocks(SimDuration::from_secs(1));
        for i in 0..3 {
            assert_eq!(
                c.sim(NodeId(i)).node().now.since(SimTime::ZERO),
                SimDuration::from_secs(6)
            );
        }
    }

    #[test]
    fn heap_ratios_and_clock_jumps_serve_the_admission_layer() {
        let mut c = Cluster::new(ClusterConfig {
            nodes: 2,
            heap_per_node: ByteSize::kib(100),
            ..Default::default()
        });
        assert_eq!(c.min_free_heap_ratio(), 1.0);
        let node = NodeId(0);
        let space = c.sim(node).node_mut().heap.create_space("ballast");
        c.sim(node)
            .node_mut()
            .heap
            .alloc(space, ByteSize::kib(40), SimTime::ZERO)
            .unwrap();
        assert!((c.free_heap_ratio(node) - 0.6).abs() < 1e-9);
        assert_eq!(c.free_heap_ratio(NodeId(1)), 1.0);
        assert!((c.min_free_heap_ratio() - 0.6).abs() < 1e-9);

        c.advance_clocks_to(SimTime::from_nanos(1_000));
        assert_eq!(c.sim(NodeId(1)).node().now, SimTime::from_nanos(1_000));
        // Already-ahead nodes are untouched.
        c.sim(NodeId(1)).node_mut().now += SimDuration::from_secs(1);
        let ahead = c.sim(NodeId(1)).node().now;
        c.advance_clocks_to(SimTime::from_nanos(2_000));
        assert_eq!(c.sim(NodeId(1)).node().now, ahead);
        assert_eq!(c.sim(NodeId(0)).node().now, SimTime::from_nanos(2_000));
    }

    #[test]
    fn armed_faults_fire_crashes_and_count_in_report() {
        let mut c = Cluster::new(ClusterConfig {
            nodes: 3,
            ..Default::default()
        });
        let plan = FaultPlan::new(9).with_crash(NodeId(1), SimTime::from_nanos(500));
        c.install_faults(plan);

        // Before the instant: nothing happens.
        assert!(c.poll_crash(NodeId(1)).is_empty());
        assert_eq!(c.live_nodes().len(), 3);

        c.sim(NodeId(1)).node_mut().now += SimDuration::from_micros(1);
        c.sim(NodeId(1))
            .node_mut()
            .disk_write_async("spill", ByteSize::kib(8))
            .unwrap();
        c.poll_crash(NodeId(1));
        assert!(c.sim(NodeId(1)).is_crashed());
        assert_eq!(c.sim(NodeId(1)).node().disk.file_count(), 0);
        assert_eq!(c.live_nodes(), vec![NodeId(0), NodeId(2)]);
        // Fires once only.
        assert!(c.poll_crash(NodeId(1)).is_empty());

        let r = c.report(JobOutcome::Completed);
        assert_eq!(r.counter("faults_crashes"), 1.0);
    }

    #[test]
    fn report_snapshots_every_node() {
        let mut c = Cluster::new(ClusterConfig {
            nodes: 2,
            ..Default::default()
        });
        c.sim(NodeId(0)).node_mut().now += SimDuration::from_secs(3);
        let r = c.report(JobOutcome::Completed);
        assert_eq!(r.nodes.len(), 2);
        assert_eq!(r.elapsed, SimDuration::from_secs(3));
        assert!(r.outcome.ok());
    }
}
