//! Property tests on the node scheduler: virtual time is monotonic,
//! processor sharing never undercounts the longest step, and thread
//! lifecycle transitions are one-way.

use proptest::prelude::*;
use simcluster::{NodeSim, NodeState, StepOutcome, Work, WorkCx};
use simcore::{ByteSize, NodeId, SimDuration};

/// A thread that burns a fixed CPU amount per step for `steps` steps.
struct Burner {
    per_step: SimDuration,
    steps: u32,
}

impl Work for Burner {
    fn step(&mut self, cx: &mut WorkCx<'_>) -> StepOutcome {
        if self.steps == 0 {
            return StepOutcome::Finished;
        }
        cx.charge(self.per_step);
        self.steps -= 1;
        if self.steps == 0 {
            StepOutcome::Finished
        } else {
            StepOutcome::Ran
        }
    }

    fn label(&self) -> String {
        "burner".into()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Clock monotonicity and total-work lower bound: the node clock
    /// never decreases and ends at least at total CPU / cores, and at
    /// least at the longest single thread's CPU.
    #[test]
    fn clock_respects_processor_sharing(
        cores in 1usize..16,
        threads in proptest::collection::vec((1u64..500, 1u32..20), 1..12),
    ) {
        let mut sim = NodeSim::new(NodeState::new(
            NodeId(0),
            cores,
            ByteSize::mib(64),
            ByteSize::mib(64),
        ));
        let mut total_cpu = SimDuration::ZERO;
        let mut longest = SimDuration::ZERO;
        for &(us, steps) in &threads {
            let cpu = SimDuration::from_micros(us) * steps as u64;
            total_cpu += cpu;
            longest = longest.max(cpu);
            sim.spawn(Box::new(Burner {
                per_step: SimDuration::from_micros(us),
                steps,
            }));
        }
        let mut prev = sim.node().now;
        let mut rounds = 0;
        while sim.live_count() > 0 {
            let r = sim.run_round();
            prop_assert!(r.failed.is_empty());
            prop_assert!(sim.node().now >= prev, "clock went backwards");
            prev = sim.node().now;
            rounds += 1;
            prop_assert!(rounds < 100_000, "runaway schedule");
        }
        let elapsed = sim.node().now.since(simcore::SimTime::ZERO);
        let shared_floor = SimDuration::from_nanos(total_cpu.as_nanos() / cores as u64);
        prop_assert!(elapsed >= longest, "elapsed {} < longest thread {}", elapsed, longest);
        prop_assert!(
            elapsed + SimDuration::from_micros(1) >= shared_floor,
            "elapsed {} < fair-share floor {}",
            elapsed,
            shared_floor
        );
        // And not absurdly more than serial execution.
        prop_assert!(elapsed <= total_cpu + SimDuration::from_millis(10));
    }

    /// Finished threads stay finished and never rejoin the live set.
    #[test]
    fn lifecycle_is_one_way(threads in 1usize..8) {
        let mut sim = NodeSim::new(NodeState::new(
            NodeId(0),
            2,
            ByteSize::mib(16),
            ByteSize::mib(16),
        ));
        let ids: Vec<_> = (0..threads)
            .map(|_| {
                sim.spawn(Box::new(Burner {
                    per_step: SimDuration::from_micros(50),
                    steps: 3,
                }))
            })
            .collect();
        while sim.live_count() > 0 {
            sim.run_round();
        }
        for id in ids {
            prop_assert_eq!(sim.thread_state(id), Some(simcluster::ThreadState::Finished));
            prop_assert!(!sim.kill(id), "retired threads cannot be killed");
        }
        // A post-completion round is a no-op.
        let r = sim.run_round();
        prop_assert!(r.idle());
    }
}
