//! Property test: cross-shard event ordering is shard-count-invariant.
//!
//! Shard workers emit trace events into per-node stream overlays that
//! the executor merges back at the round barrier; the canonical merged
//! order (`(time, node, seq)`) must therefore be *identical* whatever
//! the shard count — the events are the only cross-shard "messages" in
//! the lockstep design, so their merged bytes are the ordering
//! property. Randomized workloads (seeded LCG: node counts, skewed
//! thread loads, tuple counts, per-thread emission cadence) run at
//! shards 1/2/3/4 and the serialized trace of every parallel run must
//! equal the serial one byte for byte.
//!
//! A single `#[test]` drives all cases because the tracer is
//! process-global; this file is its own test binary, so nothing else
//! races it.

use simcluster::{Cluster, ClusterConfig, ShardExecutor, StepOutcome, Work, WorkCx};
use simcore::{tracer, ByteSize, NodeId, SimDuration, SpaceId};

/// Deterministic splitmix-style generator for the property cases.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

/// Burns CPU over synthetic tuples and emits a trace event every
/// `emit_every` tuples — the cross-shard messages whose merged order
/// the property checks.
struct Chatter {
    space: Option<SpaceId>,
    tuples: u64,
    emit_every: u64,
    processed: u64,
}

impl Work for Chatter {
    fn step(&mut self, cx: &mut WorkCx<'_>) -> StepOutcome {
        let space = match self.space {
            Some(s) => s,
            None => {
                let s = cx.create_space("chatter");
                self.space = Some(s);
                s
            }
        };
        let per_tuple = cx.cost().tuple_cost(ByteSize(64));
        while self.tuples > 0 && !cx.out_of_quantum() {
            cx.charge(per_tuple);
            if let Err(e) = cx.alloc(space, ByteSize(40)) {
                return StepOutcome::Failed(e);
            }
            self.tuples -= 1;
            self.processed += 1;
            if self.processed.is_multiple_of(self.emit_every) {
                let node = cx.node().id;
                let now = cx.now();
                tracer::emit(
                    Some(node),
                    None,
                    now,
                    SimDuration::ZERO,
                    tracer::TraceData::FrameChunk {
                        tuples: self.processed,
                    },
                );
            }
        }
        if self.tuples == 0 {
            StepOutcome::Finished
        } else {
            StepOutcome::Ran
        }
    }

    fn label(&self) -> String {
        "chatter".into()
    }
}

/// Builds one randomized cluster case and runs it to completion at the
/// given shard count, returning the canonical serialized trace plus a
/// per-node state fingerprint.
fn run_case(case_seed: u64, shards: usize) -> (String, Vec<(u64, u64)>) {
    let mut rng = Rng(case_seed);
    let nodes = rng.range(2, 6) as usize;
    let cfg = ClusterConfig {
        nodes,
        cores: rng.range(1, 4) as usize,
        heap_per_node: ByteSize::mib(rng.range(4, 16)),
        disk_per_node: ByteSize::mib(64),
        ..Default::default()
    };
    let mut c = Cluster::new(cfg);
    for i in 0..nodes {
        let threads = rng.range(1, 4);
        for _ in 0..threads {
            c.sim(NodeId(i as u32)).spawn(Box::new(Chatter {
                space: None,
                tuples: rng.range(500, 6_000),
                emit_every: rng.range(16, 257),
                processed: 0,
            }));
        }
    }

    tracer::begin_run();
    let mut exec = ShardExecutor::with_shards(shards);
    loop {
        let runnable: Vec<NodeId> = (0..nodes as u32)
            .map(NodeId)
            .filter(|&n| c.sim(n).live_count() > 0)
            .collect();
        if runnable.is_empty() {
            break;
        }
        let run = exec.run_round(&mut c, &runnable, true);
        assert!(!run.aborted, "case {case_seed}: unexpected failure");
    }
    let events = tracer::take_run().expect("trace harvested");
    let trace = tracer::jsonl_run(0, &format!("case{case_seed}"), &events);
    let state = (0..nodes as u32)
        .map(|i| {
            let n = c.sim(NodeId(i)).node();
            (n.now.as_nanos(), n.heap.stats().minor_count)
        })
        .collect();
    (trace, state)
}

#[test]
fn merged_event_order_is_shard_invariant() {
    tracer::enable();
    for case in 0..8u64 {
        let case_seed = 0xA5A5_0000 + case;
        let (serial_trace, serial_state) = run_case(case_seed, 1);
        assert!(
            serial_trace.lines().count() > 1,
            "case {case_seed}: workload emitted no events — property is vacuous"
        );
        for shards in [2usize, 3, 4] {
            let (trace, state) = run_case(case_seed, shards);
            assert_eq!(
                state, serial_state,
                "case {case_seed}: node state diverged at {shards} shards"
            );
            assert!(
                trace == serial_trace,
                "case {case_seed}: merged event order diverged at {shards} shards\n\
                 first differing line: {:?}",
                trace
                    .lines()
                    .zip(serial_trace.lines())
                    .find(|(a, b)| a != b)
            );
        }
    }
    tracer::disable();
}
