#![warn(missing_docs)]

//! Simulated cluster network: a uniform-bandwidth fabric with per-link
//! accounting, used by the shuffle stages of both engines.
//!
//! The paper's testbed uses EC2 "enhanced networking"; shuffle cost shapes
//! end-to-end times but is not the contribution, so a linear
//! latency-plus-bandwidth model suffices (DESIGN.md §1).
//!
//! With a [`FaultInjector`] installed (see [`Fabric::install_injector`]),
//! the time-aware [`Fabric::transfer_at`] consults the injector's link
//! state: slowdown windows dilate the wire time, finite partition windows
//! stall the sender until they heal, and a permanent partition fails the
//! transfer with [`simcore::SimError::NetPartition`].

use simcore::{
    metrics, ByteSize, CostModel, FaultInjector, FaultStats, LinkState, NodeId, SimDuration,
    SimError, SimResult, SimTime,
};

/// Wire shapes of the quorum RPCs a replicated state machine puts on
/// the fabric (`simsmr`). Centralising the byte counts here keeps the
/// leader, follower, and bench sides of a quorum priced identically.
pub mod rpc {
    use simcore::ByteSize;

    /// Fixed header every quorum RPC carries: view, log index, commit
    /// watermark, and a checksum.
    pub const HEADER: ByteSize = ByteSize(64);

    /// An `append-entries` RPC replicating one log entry of `payload`
    /// serialized bytes.
    pub fn append_entries(payload: ByteSize) -> ByteSize {
        HEADER + payload
    }

    /// A follower's acknowledgement (header only).
    pub fn ack() -> ByteSize {
        HEADER
    }

    /// A leader heartbeat (header only).
    pub fn heartbeat() -> ByteSize {
        HEADER
    }

    /// A view-change announcement: the new view plus a 16-byte
    /// (index, digest) summary for each of `entries` uncommitted
    /// entries the new leader re-replicates.
    pub fn view_change(entries: u64) -> ByteSize {
        HEADER + ByteSize(16 * entries)
    }
}

/// Aggregate transfer statistics.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    /// Total bytes moved between distinct nodes.
    pub bytes_remote: ByteSize,
    /// Total bytes "moved" node-locally (free).
    pub bytes_local: ByteSize,
    /// Number of remote transfers.
    pub remote_transfers: u64,
    /// Total virtual time spent on the wire.
    pub wire_time: SimDuration,
    /// Transfers that waited out a partition window or ran slowed.
    pub degraded_transfers: u64,
}

/// The cluster fabric.
#[derive(Clone, Debug)]
pub struct Fabric {
    cost: CostModel,
    nodes: usize,
    stats: NetStats,
    injector: Option<Box<FaultInjector>>,
}

impl Fabric {
    /// Creates a fabric connecting `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new(nodes: usize, cost: CostModel) -> Self {
        assert!(nodes > 0, "fabric needs at least one node");
        Fabric {
            cost,
            nodes,
            stats: NetStats::default(),
            injector: None,
        }
    }

    /// Routes subsequent time-aware transfers through a fault injector.
    ///
    /// The fabric *owns* its injector (it is driver-side state, stepped
    /// only at shuffle barriers); network fault counters are read back
    /// via [`Fabric::injector_stats`].
    pub fn install_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(Box::new(injector));
    }

    /// Fault counters accumulated by the installed injector (zeros when
    /// no injector is installed).
    pub fn injector_stats(&self) -> FaultStats {
        self.injector
            .as_ref()
            .map(|inj| inj.stats())
            .unwrap_or_default()
    }

    /// Number of nodes on the fabric.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Transfer statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Moves `bytes` from `src` to `dst`, returning the wire time.
    ///
    /// Node-local moves are free (in-process handoff). Unknown node ids
    /// are a caller bug and panic in debug builds; in release they are
    /// charged as remote.
    pub fn transfer(&mut self, src: NodeId, dst: NodeId, bytes: ByteSize) -> SimDuration {
        debug_assert!(src.as_usize() < self.nodes, "unknown src {src}");
        debug_assert!(dst.as_usize() < self.nodes, "unknown dst {dst}");
        if src == dst {
            self.stats.bytes_local += bytes;
            return SimDuration::ZERO;
        }
        let t = self.cost.net_transfer(bytes);
        self.stats.bytes_remote += bytes;
        self.stats.remote_transfers += 1;
        self.stats.wire_time += t;
        t
    }

    /// Time-aware transfer: like [`Fabric::transfer`] but consults the
    /// installed fault injector for the `src → dst` link state at `now`.
    ///
    /// A slowdown window dilates the wire time; a finite partition
    /// window adds the wait until it heals; a permanent partition fails
    /// with [`SimError::NetPartition`]. Without an injector this is
    /// exactly `transfer`.
    pub fn transfer_at(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: ByteSize,
        now: SimTime,
    ) -> SimResult<SimDuration> {
        if src.as_usize() >= self.nodes || dst.as_usize() >= self.nodes {
            return Err(SimError::Internal(format!(
                "transfer between unknown nodes {src} → {dst} (fabric has {})",
                self.nodes
            )));
        }
        if self.injector.is_none() {
            let t = self.transfer(src, dst, bytes);
            if src != dst {
                meter_transfer(src, bytes, now, t);
            }
            return Ok(t);
        }
        if src == dst {
            self.stats.bytes_local += bytes;
            return Ok(SimDuration::ZERO);
        }
        let inj = self.injector.as_mut().expect("checked above");
        let state = inj.link_state(src, dst, now);
        let (wait, factor) = match state {
            LinkState::Up { factor } => (SimDuration::ZERO, factor),
            LinkState::BlockedUntil(until) => {
                // Retransmit when the window closes, at whatever speed
                // the link has then.
                let healed = inj.link_state(src, dst, until);
                let f = match healed {
                    LinkState::Up { factor } => factor,
                    _ => 1.0,
                };
                (until.since(now), f)
            }
            LinkState::Severed => {
                inj.note_transfer(false, true);
                return Err(SimError::NetPartition { src, dst });
            }
        };
        let degraded = !wait.is_zero() || factor > 1.0;
        if degraded {
            inj.note_transfer(true, false);
            self.stats.degraded_transfers += 1;
        }
        let wire = self.cost.net_transfer(bytes) * factor.max(1.0);
        self.stats.bytes_remote += bytes;
        self.stats.remote_transfers += 1;
        self.stats.wire_time += wire;
        meter_transfer(src, bytes, now, wait + wire);
        Ok(wait + wire)
    }

    /// Quorum fan-out: sends one RPC of `bytes` from `src` to each
    /// destination, in slice order, returning the per-destination wire
    /// times. Each link is consulted independently through
    /// [`Fabric::transfer_at`], so slowdown and partition windows apply
    /// per follower; the first severed link fails the whole fan-out.
    pub fn quorum_send_at(
        &mut self,
        src: NodeId,
        dsts: &[NodeId],
        bytes: ByteSize,
        now: SimTime,
    ) -> SimResult<Vec<SimDuration>> {
        dsts.iter()
            .map(|&dst| self.transfer_at(src, dst, bytes, now))
            .collect()
    }

    /// The cost of an all-to-all shuffle where each of `senders` nodes
    /// sends `bytes_per_pair` to each of `receivers` nodes, assuming
    /// perfect overlap across senders (the bottleneck is one sender's
    /// outbound link).
    pub fn shuffle_time(&self, receivers: usize, bytes_per_pair: ByteSize) -> SimDuration {
        let outbound = bytes_per_pair * receivers.max(1) as u64;
        self.cost.net_transfer(outbound)
    }
}

/// Metrics hook for one time-aware remote transfer: the byte counter
/// plus an in-flight gauge that rises at send time and falls when the
/// wire drains (the harvest merge re-orders the future-stamped drop
/// into place).
#[inline]
fn meter_transfer(src: NodeId, bytes: ByteSize, now: SimTime, total: SimDuration) {
    if metrics::is_enabled() {
        use metrics::Metric;
        let b = bytes.as_u64();
        metrics::counter_add(Some(src), Metric::NetBytes, now, b);
        metrics::gauge_add(Some(src), Metric::NetInflightBytes, now, b as i64);
        metrics::gauge_add(
            Some(src),
            Metric::NetInflightBytes,
            now + total,
            -(b as i64),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_transfers_are_free() {
        let mut f = Fabric::new(3, CostModel::default());
        let t = f.transfer(NodeId(1), NodeId(1), ByteSize::mib(100));
        assert_eq!(t, SimDuration::ZERO);
        assert_eq!(f.stats().bytes_local, ByteSize::mib(100));
        assert_eq!(f.stats().remote_transfers, 0);
    }

    #[test]
    fn remote_transfers_cost_time_linear_in_bytes() {
        let mut f = Fabric::new(3, CostModel::default());
        let t1 = f.transfer(NodeId(0), NodeId(1), ByteSize::mib(1));
        let t10 = f.transfer(NodeId(0), NodeId(2), ByteSize::mib(10));
        assert!(t10 > t1);
        assert_eq!(f.stats().remote_transfers, 2);
        assert_eq!(f.stats().bytes_remote, ByteSize::mib(11));
    }

    #[test]
    fn shuffle_scales_with_receivers() {
        let f = Fabric::new(8, CostModel::default());
        let narrow = f.shuffle_time(2, ByteSize::mib(1));
        let wide = f.shuffle_time(8, ByteSize::mib(1));
        assert!(wide > narrow);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use simcore::FaultPlan;

    fn at_secs(s: u64) -> SimTime {
        SimTime::from_nanos(s * 1_000_000_000)
    }

    fn faulty(plan: FaultPlan) -> Fabric {
        let mut f = Fabric::new(4, CostModel::default());
        f.install_injector(FaultInjector::new(plan));
        f
    }

    #[test]
    fn transfer_at_without_injector_matches_transfer() {
        let mut plain = Fabric::new(4, CostModel::default());
        let mut aware = Fabric::new(4, CostModel::default());
        let t1 = plain.transfer(NodeId(0), NodeId(1), ByteSize::mib(2));
        let t2 = aware
            .transfer_at(NodeId(0), NodeId(1), ByteSize::mib(2), SimTime::ZERO)
            .unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn slowdown_window_dilates_wire_time() {
        let mut f = faulty(FaultPlan::new(0).with_slowdown(SimTime::ZERO, at_secs(1), 4.0));
        let healthy = CostModel::default().net_transfer(ByteSize::mib(1));
        let slowed = f
            .transfer_at(NodeId(0), NodeId(1), ByteSize::mib(1), SimTime::ZERO)
            .unwrap();
        assert_eq!(slowed, healthy * 4.0);
        assert_eq!(f.stats().degraded_transfers, 1);
        // After the window, full speed again.
        let later = f
            .transfer_at(NodeId(0), NodeId(1), ByteSize::mib(1), at_secs(2))
            .unwrap();
        assert_eq!(later, healthy);
    }

    #[test]
    fn finite_partition_stalls_the_sender() {
        let mut f = faulty(FaultPlan::new(0).with_link_partition(
            NodeId(0),
            NodeId(1),
            SimTime::ZERO,
            at_secs(3),
        ));
        let healthy = CostModel::default().net_transfer(ByteSize::mib(1));
        let t = f
            .transfer_at(NodeId(0), NodeId(1), ByteSize::mib(1), at_secs(1))
            .unwrap();
        assert_eq!(t, SimDuration::from_secs(2) + healthy);
        // The unaffected link is untouched.
        let other = f
            .transfer_at(NodeId(0), NodeId(2), ByteSize::mib(1), at_secs(1))
            .unwrap();
        assert_eq!(other, healthy);
    }

    #[test]
    fn permanent_partition_fails_typed() {
        let mut f = faulty(FaultPlan::new(0).with_link_partition(
            NodeId(1),
            NodeId(2),
            SimTime::ZERO,
            SimTime::MAX,
        ));
        match f.transfer_at(NodeId(2), NodeId(1), ByteSize::mib(1), SimTime::ZERO) {
            Err(SimError::NetPartition { src, dst }) => {
                assert_eq!((src, dst), (NodeId(2), NodeId(1)));
            }
            other => panic!("expected NetPartition, got {other:?}"),
        }
    }

    #[test]
    fn unknown_nodes_are_typed_errors_not_panics() {
        let mut f = Fabric::new(2, CostModel::default());
        let err = f
            .transfer_at(NodeId(0), NodeId(9), ByteSize::mib(1), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, SimError::Internal(_)));
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;

    #[test]
    fn zero_receiver_shuffle_costs_one_transfer() {
        let f = Fabric::new(4, CostModel::default());
        // Clamped to one receiver: still a well-defined (latency-only+)
        // duration rather than zero or a panic.
        let t = f.shuffle_time(0, ByteSize::mib(1));
        assert_eq!(t, f.shuffle_time(1, ByteSize::mib(1)));
    }

    #[test]
    fn rpc_shapes_are_header_plus_body() {
        assert_eq!(rpc::ack(), rpc::HEADER);
        assert_eq!(rpc::heartbeat(), rpc::HEADER);
        assert_eq!(
            rpc::append_entries(ByteSize::kib(2)),
            rpc::HEADER + ByteSize::kib(2)
        );
        assert!(rpc::view_change(8) > rpc::view_change(0));
    }

    #[test]
    fn quorum_fanout_prices_each_link() {
        let mut f = Fabric::new(4, CostModel::default());
        let times = f
            .quorum_send_at(
                NodeId(0),
                &[NodeId(1), NodeId(2), NodeId(0)],
                ByteSize::kib(2),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(times.len(), 3);
        assert_eq!(times[0], times[1]);
        assert_eq!(times[2], SimDuration::ZERO); // self-send is local
        assert_eq!(f.stats().remote_transfers, 2);
    }

    #[test]
    fn zero_byte_transfer_is_latency_only() {
        let mut f = Fabric::new(2, CostModel::default());
        let t = f.transfer(NodeId(0), NodeId(1), ByteSize::ZERO);
        assert_eq!(t, CostModel::default().net_latency);
        assert_eq!(f.stats().remote_transfers, 1);
    }
}
