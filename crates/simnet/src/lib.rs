#![warn(missing_docs)]

//! Simulated cluster network: a uniform-bandwidth fabric with per-link
//! accounting, used by the shuffle stages of both engines.
//!
//! The paper's testbed uses EC2 "enhanced networking"; shuffle cost shapes
//! end-to-end times but is not the contribution, so a linear
//! latency-plus-bandwidth model suffices (DESIGN.md §1).

use simcore::{ByteSize, CostModel, NodeId, SimDuration};

/// Aggregate transfer statistics.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    /// Total bytes moved between distinct nodes.
    pub bytes_remote: ByteSize,
    /// Total bytes "moved" node-locally (free).
    pub bytes_local: ByteSize,
    /// Number of remote transfers.
    pub remote_transfers: u64,
    /// Total virtual time spent on the wire.
    pub wire_time: SimDuration,
}

/// The cluster fabric.
#[derive(Clone, Debug)]
pub struct Fabric {
    cost: CostModel,
    nodes: usize,
    stats: NetStats,
}

impl Fabric {
    /// Creates a fabric connecting `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new(nodes: usize, cost: CostModel) -> Self {
        assert!(nodes > 0, "fabric needs at least one node");
        Fabric { cost, nodes, stats: NetStats::default() }
    }

    /// Number of nodes on the fabric.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Transfer statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Moves `bytes` from `src` to `dst`, returning the wire time.
    ///
    /// Node-local moves are free (in-process handoff). Unknown node ids
    /// are a caller bug and panic in debug builds; in release they are
    /// charged as remote.
    pub fn transfer(&mut self, src: NodeId, dst: NodeId, bytes: ByteSize) -> SimDuration {
        debug_assert!(src.as_usize() < self.nodes, "unknown src {src}");
        debug_assert!(dst.as_usize() < self.nodes, "unknown dst {dst}");
        if src == dst {
            self.stats.bytes_local += bytes;
            return SimDuration::ZERO;
        }
        let t = self.cost.net_transfer(bytes);
        self.stats.bytes_remote += bytes;
        self.stats.remote_transfers += 1;
        self.stats.wire_time += t;
        t
    }

    /// The cost of an all-to-all shuffle where each of `senders` nodes
    /// sends `bytes_per_pair` to each of `receivers` nodes, assuming
    /// perfect overlap across senders (the bottleneck is one sender's
    /// outbound link).
    pub fn shuffle_time(
        &self,
        receivers: usize,
        bytes_per_pair: ByteSize,
    ) -> SimDuration {
        let outbound = bytes_per_pair * receivers.max(1) as u64;
        self.cost.net_transfer(outbound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_transfers_are_free() {
        let mut f = Fabric::new(3, CostModel::default());
        let t = f.transfer(NodeId(1), NodeId(1), ByteSize::mib(100));
        assert_eq!(t, SimDuration::ZERO);
        assert_eq!(f.stats().bytes_local, ByteSize::mib(100));
        assert_eq!(f.stats().remote_transfers, 0);
    }

    #[test]
    fn remote_transfers_cost_time_linear_in_bytes() {
        let mut f = Fabric::new(3, CostModel::default());
        let t1 = f.transfer(NodeId(0), NodeId(1), ByteSize::mib(1));
        let t10 = f.transfer(NodeId(0), NodeId(2), ByteSize::mib(10));
        assert!(t10 > t1);
        assert_eq!(f.stats().remote_transfers, 2);
        assert_eq!(f.stats().bytes_remote, ByteSize::mib(11));
    }

    #[test]
    fn shuffle_scales_with_receivers() {
        let f = Fabric::new(8, CostModel::default());
        let narrow = f.shuffle_time(2, ByteSize::mib(1));
        let wide = f.shuffle_time(8, ByteSize::mib(1));
        assert!(wide > narrow);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;

    #[test]
    fn zero_receiver_shuffle_costs_one_transfer() {
        let f = Fabric::new(4, CostModel::default());
        // Clamped to one receiver: still a well-defined (latency-only+)
        // duration rather than zero or a panic.
        let t = f.shuffle_time(0, ByteSize::mib(1));
        assert_eq!(t, f.shuffle_time(1, ByteSize::mib(1)));
    }

    #[test]
    fn zero_byte_transfer_is_latency_only() {
        let mut f = Fabric::new(2, CostModel::default());
        let t = f.transfer(NodeId(0), NodeId(1), ByteSize::ZERO);
        assert_eq!(t, CostModel::default().net_latency);
        assert_eq!(f.stats().remote_transfers, 1);
    }
}
