#![warn(missing_docs)]

//! Seeded synthetic dataset generators with the *shape* of the paper's
//! inputs (DESIGN.md §1):
//!
//! * [`webmap`] — a power-law web graph standing in for the Yahoo!
//!   Webmap and its subgraphs (Table 3), used by WC / HS / II;
//! * [`tpch`] — TPC-H Customer/Order/LineItem rows (Table 4), used by
//!   HJ / GR;
//! * [`stackoverflow`] — posts with heavy-tailed lengths (the hot-key
//!   root cause of §2), used by MSA;
//! * [`wikipedia`] — articles with Zipf word frequencies and
//!   heavy-tailed sentence lengths (the large-intermediate-results root
//!   cause), used by IMC / IIB / WCM / CRP.
//!
//! Everything is scaled by `simcore::SCALE` (1/1024): a dataset labelled
//! `"72GB"` carries 72 MiB of simulated payload. Generation is
//! deterministic per `(seed, block)` so any block can be produced
//! independently on any node, exactly like reading an HDFS block.

pub mod stackoverflow;
pub mod tpch;
pub mod webmap;
pub mod wikipedia;
pub mod words;

pub use stackoverflow::{Post, StackOverflowConfig};
pub use tpch::{Customer, LineItem, Order, TpchConfig, TpchScale};
pub use webmap::{AdjRecord, WebmapConfig, WebmapSize};
pub use wikipedia::{Article, WikipediaConfig};
pub use words::WordDist;
