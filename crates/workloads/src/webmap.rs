//! A power-law web graph: the stand-in for the Yahoo! Webmap (Table 3).
//!
//! Records are adjacency-list text lines (`vertex neighbor neighbor …`),
//! which is how WC / HS / II consume the dataset: WC tokenizes the ids,
//! HS sorts the lines, II inverts vertex → neighbors.

use simcore::jbloat::{self, HeapSized};
use simcore::{prof, ByteSize, DetRng};

/// The six dataset sizes of Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WebmapSize {
    /// The full webmap ("72GB": 1.41B vertices, 8.05B edges).
    G72,
    /// "44GB": 0.99B vertices, 4.47B edges.
    G44,
    /// "27GB": 0.59B vertices, 2.44B edges.
    G27,
    /// "14GB": 143M vertices, 1.47B edges.
    G14,
    /// "10GB": 76M vertices, 1.08B edges.
    G10,
    /// "3GB": 25M vertices, 314M edges.
    G3,
}

impl WebmapSize {
    /// All sizes, largest first (the order of Table 3).
    pub const ALL: [WebmapSize; 6] = [
        WebmapSize::G72,
        WebmapSize::G44,
        WebmapSize::G27,
        WebmapSize::G14,
        WebmapSize::G10,
        WebmapSize::G3,
    ];

    /// The paper's label for this dataset.
    pub fn label(self) -> &'static str {
        match self {
            WebmapSize::G72 => "72GB",
            WebmapSize::G44 => "44GB",
            WebmapSize::G27 => "27GB",
            WebmapSize::G14 => "14GB",
            WebmapSize::G10 => "10GB",
            WebmapSize::G3 => "3GB",
        }
    }

    /// Paper-scale (vertices, edges) from Table 3.
    pub fn paper_counts(self) -> (u64, u64) {
        match self {
            WebmapSize::G72 => (1_413_511_390, 8_050_112_169),
            WebmapSize::G44 => (992_128_706, 4_474_491_119),
            WebmapSize::G27 => (587_703_486, 2_441_014_870),
            WebmapSize::G14 => (143_060_913, 1_470_129_872),
            WebmapSize::G10 => (75_605_388, 1_082_093_483),
            WebmapSize::G3 => (24_973_544, 313_833_543),
        }
    }

    /// Paper-scale byte size.
    pub fn paper_bytes(self) -> ByteSize {
        match self {
            WebmapSize::G72 => ByteSize::gib(72),
            WebmapSize::G44 => ByteSize::gib(44),
            WebmapSize::G27 => ByteSize::gib(27),
            WebmapSize::G14 => ByteSize::gib(14),
            WebmapSize::G10 => ByteSize::gib(10),
            WebmapSize::G3 => ByteSize::gib(3),
        }
    }
}

/// One adjacency-list line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdjRecord {
    /// The source vertex.
    pub vertex: u64,
    /// Its out-neighbours.
    pub neighbors: Vec<u64>,
}

impl AdjRecord {
    /// Characters of the text line (ids as ~10-digit decimals plus
    /// separators).
    pub fn chars(&self) -> u64 {
        11 * (1 + self.neighbors.len() as u64)
    }
}

impl HeapSized for AdjRecord {
    fn heap_bytes(&self) -> u64 {
        // The line as a Java String (what a TextInputFormat record is).
        jbloat::string(self.chars())
    }

    fn ser_bytes(&self) -> u64 {
        // On disk it is UTF-8 text.
        self.chars()
    }
}

/// Generator for one webmap dataset (scaled 1/1024 from Table 3).
#[derive(Clone, Debug)]
pub struct WebmapConfig {
    /// Which Table 3 row.
    pub size: WebmapSize,
    /// Scaled vertex count.
    pub vertices: u64,
    /// Scaled edge target.
    pub edges: u64,
    /// Scaled payload bytes.
    pub total_bytes: ByteSize,
    /// Generator seed.
    pub seed: u64,
}

impl WebmapConfig {
    /// The scaled dataset for a Table 3 row.
    pub fn preset(size: WebmapSize, seed: u64) -> Self {
        let (v, e) = size.paper_counts();
        WebmapConfig {
            size,
            vertices: v / simcore::SCALE,
            edges: e / simcore::SCALE,
            total_bytes: ByteSize(size.paper_bytes().as_u64() / simcore::SCALE),
            seed,
        }
    }

    /// Mean out-degree.
    pub fn mean_degree(&self) -> f64 {
        self.edges as f64 / self.vertices.max(1) as f64
    }

    /// Number of blocks at `block_size`.
    pub fn num_blocks(&self, block_size: ByteSize) -> u64 {
        self.total_bytes
            .as_u64()
            .div_ceil(block_size.as_u64())
            .max(1)
    }

    /// Generates block `index` (deterministic in `(seed, index)`).
    ///
    /// Vertices are distributed evenly across blocks; out-degrees follow
    /// a heavy-tailed distribution calibrated to the mean degree, so a
    /// few vertices have enormous adjacency lists (the hot keys that
    /// break II and WC in the paper).
    pub fn block(&self, index: u64, block_size: ByteSize) -> Vec<AdjRecord> {
        let _wall = prof::wall_timer(prof::Stage::Generate);
        let n_blocks = self.num_blocks(block_size);
        assert!(index < n_blocks, "block {index} out of {n_blocks}");
        // Spread the division remainder across blocks so no block is
        // oversized (block i covers [i*T/n, (i+1)*T/n)).
        let first = index * self.vertices / n_blocks;
        let count = (index + 1) * self.vertices / n_blocks - first;
        let mut rng = DetRng::new(self.seed).fork(index);
        let mean = self.mean_degree();
        let dmax = (self.vertices / 8).max(16);
        // `Range<u64>` is not `ExactSizeIterator`, so a plain collect
        // would grow the vecs; pre-size them instead.
        let mut recs = Vec::with_capacity(count as usize);
        for i in 0..count {
            let vertex = first + i;
            let deg = sample_degree(&mut rng, mean, dmax);
            let mut neighbors = Vec::with_capacity(deg as usize);
            for _ in 0..deg {
                neighbors.push(rng.below(self.vertices.max(1)));
            }
            recs.push(AdjRecord { vertex, neighbors });
        }
        prof::count(prof::Stage::Generate, 1, recs.len() as u64);
        recs
    }

    /// Exact generated statistics (iterates every block).
    pub fn exact_stats(&self, block_size: ByteSize) -> (u64, u64, ByteSize) {
        let mut vertices = 0;
        let mut edges = 0;
        let mut bytes = 0;
        for b in 0..self.num_blocks(block_size) {
            for rec in self.block(b, block_size) {
                vertices += 1;
                edges += rec.neighbors.len() as u64;
                bytes += rec.chars();
            }
        }
        (vertices, edges, ByteSize(bytes))
    }
}

/// Draws an out-degree from a bounded Pareto (α = 1.7) rescaled to the
/// target mean.
fn sample_degree(rng: &mut DetRng, mean: f64, dmax: u64) -> u64 {
    const ALPHA: f64 = 1.7;
    let raw = rng.bounded_pareto(1, dmax, ALPHA) as f64;
    let raw_mean = bounded_pareto_mean(1.0, dmax as f64, ALPHA);
    ((raw * mean / raw_mean).round() as u64).clamp(1, dmax)
}

/// Analytic mean of a bounded Pareto on `[l, h]` with shape `a != 1`.
fn bounded_pareto_mean(l: f64, h: f64, a: f64) -> f64 {
    let la = l.powf(a);
    (la / (1.0 - (l / h).powf(a)))
        * (a / (a - 1.0))
        * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_the_paper_numbers() {
        let cfg = WebmapConfig::preset(WebmapSize::G72, 1);
        assert_eq!(cfg.vertices, 1_413_511_390 / 1024);
        assert_eq!(cfg.edges, 8_050_112_169 / 1024);
        assert_eq!(cfg.total_bytes, ByteSize::mib(72));
        assert!((cfg.mean_degree() - 5.7).abs() < 0.2);
    }

    #[test]
    fn blocks_cover_all_vertices_exactly_once() {
        let cfg = WebmapConfig::preset(WebmapSize::G3, 2);
        let bs = ByteSize::kib(128);
        let mut seen = 0u64;
        let mut last_vertex = None;
        for b in 0..cfg.num_blocks(bs) {
            for rec in cfg.block(b, bs) {
                if let Some(prev) = last_vertex {
                    assert_eq!(rec.vertex, prev + 1, "vertices must be contiguous");
                }
                last_vertex = Some(rec.vertex);
                seen += 1;
            }
        }
        assert_eq!(seen, cfg.vertices);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = WebmapConfig::preset(WebmapSize::G3, 7);
        let a = cfg.block(3, ByteSize::kib(128));
        let b = cfg.block(3, ByteSize::kib(128));
        assert_eq!(a, b);
        // Different seeds differ.
        let cfg2 = WebmapConfig::preset(WebmapSize::G3, 8);
        assert_ne!(a, cfg2.block(3, ByteSize::kib(128)));
    }

    #[test]
    fn edge_count_and_bytes_near_target() {
        let cfg = WebmapConfig::preset(WebmapSize::G3, 3);
        let (v, e, bytes) = cfg.exact_stats(ByteSize::kib(128));
        assert_eq!(v, cfg.vertices);
        let edge_err = (e as f64 - cfg.edges as f64).abs() / cfg.edges as f64;
        assert!(
            edge_err < 0.25,
            "edges {e} vs target {} (err {edge_err})",
            cfg.edges
        );
        let byte_err = (bytes.as_u64() as f64 - cfg.total_bytes.as_u64() as f64).abs()
            / cfg.total_bytes.as_u64() as f64;
        assert!(
            byte_err < 0.35,
            "bytes {bytes} vs {} (err {byte_err})",
            cfg.total_bytes
        );
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let cfg = WebmapConfig::preset(WebmapSize::G3, 4);
        let mut max_deg = 0usize;
        let mut total = 0usize;
        let mut n = 0usize;
        for b in 0..4 {
            for rec in cfg.block(b, ByteSize::kib(128)) {
                max_deg = max_deg.max(rec.neighbors.len());
                total += rec.neighbors.len();
                n += 1;
            }
        }
        let mean = total as f64 / n as f64;
        assert!(max_deg as f64 > 20.0 * mean, "max {max_deg} mean {mean}");
    }

    #[test]
    fn record_bloat_exceeds_text_size() {
        let rec = AdjRecord {
            vertex: 1,
            neighbors: vec![2, 3, 4],
        };
        assert!(rec.heap_bytes() > rec.ser_bytes());
        assert_eq!(rec.ser_bytes(), rec.chars());
    }
}
