//! Shared Zipf word machinery for the text-like datasets.

use simcore::rng::{stable_hash64, ZipfTable};
use simcore::DetRng;

/// A Zipf-distributed vocabulary: word ids in `0..vocab`, rank 0 hottest.
#[derive(Clone, Debug)]
pub struct WordDist {
    table: ZipfTable,
}

impl WordDist {
    /// Builds a vocabulary of `vocab` words with Zipf exponent `s`
    /// (natural text is ≈ 1.0).
    pub fn new(vocab: usize, s: f64) -> Self {
        WordDist {
            table: ZipfTable::new(vocab, s),
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.len()
    }

    /// Draws one word id.
    pub fn sample(&self, rng: &mut DetRng) -> u32 {
        self.table.sample(rng) as u32
    }

    /// Draws `n` word ids.
    pub fn sample_many(&self, rng: &mut DetRng, n: usize) -> Vec<u32> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Deterministic "spelling length" of a word id, 3..=12 characters
    /// (for bloat/byte accounting).
    pub fn word_chars(word: u32) -> u64 {
        3 + stable_hash64(word as u64) % 10
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_in_vocabulary() {
        let d = WordDist::new(1000, 1.0);
        let mut rng = DetRng::new(1);
        for _ in 0..5_000 {
            assert!((d.sample(&mut rng) as usize) < d.vocab());
        }
    }

    #[test]
    fn zipf_head_dominates() {
        let d = WordDist::new(10_000, 1.0);
        let mut rng = DetRng::new(2);
        let words = d.sample_many(&mut rng, 50_000);
        let hot = words.iter().filter(|&&w| w < 10).count();
        let cold = words.iter().filter(|&&w| w >= 5_000).count();
        assert!(hot > cold, "hot={hot} cold={cold}");
    }

    #[test]
    fn word_chars_is_stable_and_bounded() {
        for w in 0..1000u32 {
            let c = WordDist::word_chars(w);
            assert!((3..=12).contains(&c));
            assert_eq!(c, WordDist::word_chars(w));
        }
    }
}
