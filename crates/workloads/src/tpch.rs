//! TPC-H style Customer / Order / LineItem generators (Table 4), used by
//! the hash-join (HJ) and group-by (GR) benchmarks.

use simcore::jbloat::{self, HeapSized};
use simcore::rng::stable_hash64;
use simcore::{prof, ByteSize};

/// The scale factors of Table 4 (plus the larger sweeps of §6.2's
/// scalability upper-bound experiment).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TpchScale {
    /// "10×": 9.8GB.
    X10,
    /// "20×": 19.7GB.
    X20,
    /// "30×": 29.7GB.
    X30,
    /// "50×": 49.6GB.
    X50,
    /// "100×": 99.8GB.
    X100,
    /// "150×": 150.4GB.
    X150,
    /// "250×" (GR's measured upper bound).
    X250,
    /// "600×" (HJ's measured upper bound).
    X600,
}

impl TpchScale {
    /// The six sizes of Table 4, smallest first.
    pub const TABLE4: [TpchScale; 6] = [
        TpchScale::X10,
        TpchScale::X20,
        TpchScale::X30,
        TpchScale::X50,
        TpchScale::X100,
        TpchScale::X150,
    ];

    /// The paper's label.
    pub fn label(self) -> &'static str {
        match self {
            TpchScale::X10 => "10x",
            TpchScale::X20 => "20x",
            TpchScale::X30 => "30x",
            TpchScale::X50 => "50x",
            TpchScale::X100 => "100x",
            TpchScale::X150 => "150x",
            TpchScale::X250 => "250x",
            TpchScale::X600 => "600x",
        }
    }

    /// The numeric scale factor.
    pub fn factor(self) -> u64 {
        match self {
            TpchScale::X10 => 10,
            TpchScale::X20 => 20,
            TpchScale::X30 => 30,
            TpchScale::X50 => 50,
            TpchScale::X100 => 100,
            TpchScale::X150 => 150,
            TpchScale::X250 => 250,
            TpchScale::X600 => 600,
        }
    }

    /// Paper-scale row counts `(customers, orders, lineitems)` from
    /// Table 4 (1.5e5 / 1.5e6 / 6e6 rows per unit scale).
    pub fn paper_counts(self) -> (u64, u64, u64) {
        let f = self.factor();
        (150_000 * f, 1_500_000 * f, 6_000_000 * f)
    }
}

/// A TPC-H `CUSTOMER` row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Customer {
    /// Primary key.
    pub custkey: u64,
    /// Nation foreign key.
    pub nationkey: u32,
    /// Account balance in cents.
    pub acctbal: i64,
}

impl HeapSized for Customer {
    fn heap_bytes(&self) -> u64 {
        // Row object + name/address/phone strings (~46 chars total).
        jbloat::object(3, 20) + jbloat::string(46)
    }

    fn ser_bytes(&self) -> u64 {
        // Textual .tbl row.
        120
    }
}

/// A TPC-H `ORDERS` row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Order {
    /// Primary key.
    pub orderkey: u64,
    /// Customer foreign key.
    pub custkey: u64,
    /// Total price in cents.
    pub totalprice: i64,
    /// Order date as days since epoch.
    pub orderdate: u32,
}

impl HeapSized for Order {
    fn heap_bytes(&self) -> u64 {
        jbloat::object(2, 28) + jbloat::string(28)
    }

    fn ser_bytes(&self) -> u64 {
        96
    }
}

/// A TPC-H `LINEITEM` row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LineItem {
    /// Order foreign key.
    pub orderkey: u64,
    /// Line number within the order.
    pub linenumber: u32,
    /// Supplier key.
    pub suppkey: u64,
    /// Quantity.
    pub quantity: u32,
    /// Extended price in cents.
    pub extendedprice: i64,
}

impl HeapSized for LineItem {
    fn heap_bytes(&self) -> u64 {
        jbloat::object(1, 40) + jbloat::string(20)
    }

    fn ser_bytes(&self) -> u64 {
        112
    }
}

/// Generator for one TPC-H dataset (scaled 1/1024 from Table 4).
#[derive(Clone, Debug)]
pub struct TpchConfig {
    /// Which scale factor.
    pub scale: TpchScale,
    /// Scaled customer rows.
    pub customers: u64,
    /// Scaled order rows.
    pub orders: u64,
    /// Scaled lineitem rows.
    pub lineitems: u64,
    /// Generator seed.
    pub seed: u64,
}

impl TpchConfig {
    /// The scaled dataset for a Table 4 row.
    pub fn preset(scale: TpchScale, seed: u64) -> Self {
        let (c, o, l) = scale.paper_counts();
        TpchConfig {
            scale,
            customers: (c / simcore::SCALE).max(1),
            orders: (o / simcore::SCALE).max(1),
            lineitems: (l / simcore::SCALE).max(1),
            seed,
        }
    }

    /// Scaled total payload bytes (serialized row sizes).
    pub fn total_bytes(&self) -> ByteSize {
        ByteSize(self.customers * 120 + self.orders * 96 + self.lineitems * 112)
    }

    /// A per-row deterministic draw in `[0, bound)`, independent of how
    /// the table is split into blocks.
    fn draw(&self, stream: u64, row: u64, bound: u64) -> u64 {
        stable_hash64(self.seed ^ stable_hash64(stream) ^ row.wrapping_mul(0x9E37)) % bound
    }

    /// Customer rows `[first, first+count)` for a block split.
    /// (`Range<u64>` is not `ExactSizeIterator`, so these block
    /// builders pre-size their vecs instead of collecting.)
    pub fn customer_block(&self, first: u64, count: u64) -> Vec<Customer> {
        let _wall = prof::wall_timer(prof::Stage::Generate);
        let end = (first + count).min(self.customers);
        let mut rows = Vec::with_capacity(end.saturating_sub(first) as usize);
        for k in first..end {
            rows.push(Customer {
                custkey: k,
                nationkey: self.draw(0x0C01, k, 25) as u32,
                acctbal: self.draw(0x0C02, k, 1_000_000) as i64 - 100_000,
            });
        }
        prof::count(prof::Stage::Generate, 1, rows.len() as u64);
        rows
    }

    /// Order rows `[first, first+count)`; `custkey` is uniform over the
    /// customer table.
    pub fn order_block(&self, first: u64, count: u64) -> Vec<Order> {
        let _wall = prof::wall_timer(prof::Stage::Generate);
        let end = (first + count).min(self.orders);
        let mut rows = Vec::with_capacity(end.saturating_sub(first) as usize);
        for k in first..end {
            rows.push(Order {
                orderkey: k,
                custkey: self.draw(0x0D01, k, self.customers.max(1)),
                totalprice: self.draw(0x0D02, k, 50_000_000) as i64,
                orderdate: 8000 + self.draw(0x0D03, k, 2557) as u32,
            });
        }
        prof::count(prof::Stage::Generate, 1, rows.len() as u64);
        rows
    }

    /// LineItem rows `[first, first+count)`; each order owns
    /// `lineitems/orders` consecutive items.
    pub fn lineitem_block(&self, first: u64, count: u64) -> Vec<LineItem> {
        let _wall = prof::wall_timer(prof::Stage::Generate);
        let per_order = (self.lineitems / self.orders.max(1)).max(1);
        let end = (first + count).min(self.lineitems);
        let mut rows = Vec::with_capacity(end.saturating_sub(first) as usize);
        for k in first..end {
            rows.push(LineItem {
                orderkey: (k / per_order).min(self.orders.saturating_sub(1)),
                linenumber: (k % per_order) as u32,
                suppkey: self.draw(0x0E01, k, 10_000),
                quantity: 1 + self.draw(0x0E02, k, 50) as u32,
                extendedprice: self.draw(0x0E03, k, 10_000_000) as i64,
            });
        }
        prof::count(prof::Stage::Generate, 1, rows.len() as u64);
        rows
    }

    /// Blocks are split-invariant: any chunking yields the same rows.
    #[cfg(test)]
    fn lineitem_chunking_invariant(&self) -> bool {
        let a: Vec<LineItem> = (0..10)
            .flat_map(|i| self.lineitem_block(i * 7, 7))
            .collect();
        let b = self.lineitem_block(0, 70);
        a == b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table4_shape() {
        let cfg = TpchConfig::preset(TpchScale::X100, 1);
        assert_eq!(cfg.customers, 150_000 * 100 / 1024);
        assert_eq!(cfg.orders, 1_500_000 * 100 / 1024);
        assert_eq!(cfg.lineitems, 6_000_000 * 100 / 1024);
        // ~99.8GB/1024 ≈ 94-100MiB of payload.
        let b = cfg.total_bytes();
        assert!(b > ByteSize::mib(70) && b < ByteSize::mib(120), "{b}");
    }

    #[test]
    fn blocks_are_deterministic_and_clamped() {
        let cfg = TpchConfig::preset(TpchScale::X10, 2);
        assert_eq!(cfg.customer_block(0, 100), cfg.customer_block(0, 100));
        let tail = cfg.customer_block(cfg.customers - 5, 100);
        assert_eq!(tail.len(), 5);
    }

    #[test]
    fn blocks_are_chunking_invariant() {
        let cfg = TpchConfig::preset(TpchScale::X10, 5);
        assert!(cfg.lineitem_chunking_invariant());
    }

    #[test]
    fn foreign_keys_are_valid() {
        let cfg = TpchConfig::preset(TpchScale::X10, 3);
        for o in cfg.order_block(0, 1_000) {
            assert!(o.custkey < cfg.customers);
        }
        for l in cfg.lineitem_block(0, 1_000) {
            assert!(l.orderkey < cfg.orders);
        }
    }

    #[test]
    fn lineitems_cluster_by_order() {
        let cfg = TpchConfig::preset(TpchScale::X10, 4);
        let items = cfg.lineitem_block(0, 40);
        let per_order = (cfg.lineitems / cfg.orders).max(1);
        assert_eq!(items[0].orderkey, 0);
        assert_eq!(items[per_order as usize].orderkey, 1);
    }

    #[test]
    fn rows_have_java_bloat() {
        let c = Customer {
            custkey: 1,
            nationkey: 2,
            acctbal: 3,
        };
        assert!(c.heap_bytes() > c.ser_bytes());
        let l = LineItem {
            orderkey: 1,
            linenumber: 2,
            suppkey: 3,
            quantity: 4,
            extendedprice: 5,
        };
        assert!(l.heap_bytes() > 60);
    }
}
