//! StackOverflow-style posts with heavy-tailed lengths: the *hot keys*
//! root cause of §2 — a handful of wildly popular posts whose assembled
//! XML objects can consume most of a task's heap on their own.

use simcore::jbloat::{self, HeapSized};
use simcore::{prof, ByteSize, DetRng};

/// One post (with its answers/comments folded into `body_chars`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Post {
    /// Post id.
    pub id: u64,
    /// Characters of the post plus its whole discussion thread.
    pub body_chars: u64,
    /// Number of answers in the thread.
    pub answers: u32,
    /// Vote score.
    pub score: i32,
}

impl Post {
    /// Whether this is one of the pathological "long post" hot keys.
    pub fn is_hot(&self) -> bool {
        self.body_chars > 16 * 1024
    }
}

impl HeapSized for Post {
    fn heap_bytes(&self) -> u64 {
        // The raw record as read: a String of the XML row.
        jbloat::string(self.body_chars) + jbloat::object(2, 16)
    }

    fn ser_bytes(&self) -> u64 {
        self.body_chars + 64
    }
}

/// Generator for a StackOverflow dump (scaled 1/1024 from the paper's
/// 29GB full dump with 25.8M posts).
#[derive(Clone, Debug)]
pub struct StackOverflowConfig {
    /// Scaled number of posts.
    pub posts: u64,
    /// Scaled payload bytes.
    pub total_bytes: ByteSize,
    /// Longest thread (the hottest key), in characters.
    pub max_post_chars: u64,
    /// Generator seed.
    pub seed: u64,
}

impl StackOverflowConfig {
    /// The paper's "StackOverflow FD 29GB" dataset, scaled.
    pub fn full_dump(seed: u64) -> Self {
        StackOverflowConfig {
            posts: 25_800_000 / simcore::SCALE,
            total_bytes: ByteSize(ByteSize::gib(29).as_u64() / simcore::SCALE),
            // A single thread whose UTF-16 string form approaches a
            // fifth of a 1GB (scaled: 1MiB) task heap on its own.
            max_post_chars: 64 * 1024,
            seed,
        }
    }

    /// Mean characters per post.
    pub fn mean_chars(&self) -> u64 {
        self.total_bytes.as_u64() / self.posts.max(1)
    }

    /// Number of blocks at `block_size`.
    pub fn num_blocks(&self, block_size: ByteSize) -> u64 {
        self.total_bytes
            .as_u64()
            .div_ceil(block_size.as_u64())
            .max(1)
    }

    /// Generates block `index`: a contiguous run of posts whose lengths
    /// follow a bounded Pareto, rescaled so the dataset hits its byte
    /// target with a genuinely hot tail.
    pub fn block(&self, index: u64, block_size: ByteSize) -> Vec<Post> {
        let _wall = prof::wall_timer(prof::Stage::Generate);
        let n_blocks = self.num_blocks(block_size);
        assert!(index < n_blocks, "block {index} out of {n_blocks}");
        // Spread the division remainder across blocks so no block is
        // oversized (block i covers [i*T/n, (i+1)*T/n)).
        let first = index * self.posts / n_blocks;
        let count = (index + 1) * self.posts / n_blocks - first;
        let mut rng = DetRng::new(self.seed).fork(index);
        let mean = self.mean_chars() as f64;
        prof::count(prof::Stage::Generate, 1, count);
        (0..count)
            .map(|i| {
                let raw = rng.bounded_pareto(64, self.max_post_chars, 1.25) as f64;
                let raw_mean = bounded_pareto_mean(64.0, self.max_post_chars as f64, 1.25);
                let body_chars = ((raw * mean / raw_mean) as u64).clamp(64, self.max_post_chars);
                Post {
                    id: first + i,
                    body_chars,
                    answers: (body_chars / 400) as u32,
                    score: rng.below(1000) as i32 - 100,
                }
            })
            .collect()
    }
}

fn bounded_pareto_mean(l: f64, h: f64, a: f64) -> f64 {
    let la = l.powf(a);
    (la / (1.0 - (l / h).powf(a)))
        * (a / (a - 1.0))
        * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_dump_is_scaled() {
        let cfg = StackOverflowConfig::full_dump(1);
        assert_eq!(cfg.posts, 25_195);
        assert_eq!(cfg.total_bytes, ByteSize::mib(29));
        assert!(cfg.mean_chars() > 1000);
    }

    #[test]
    fn block_generation_is_deterministic_and_complete() {
        let cfg = StackOverflowConfig::full_dump(2);
        let bs = ByteSize::kib(128);
        assert_eq!(cfg.block(0, bs), cfg.block(0, bs));
        let total: u64 = (0..cfg.num_blocks(bs))
            .map(|b| cfg.block(b, bs).len() as u64)
            .sum();
        assert_eq!(total, cfg.posts);
    }

    #[test]
    fn posts_have_a_hot_tail() {
        let cfg = StackOverflowConfig::full_dump(3);
        let bs = ByteSize::kib(128);
        let mut hot = 0u64;
        let mut max_chars = 0u64;
        let mut bytes = 0u64;
        for b in 0..cfg.num_blocks(bs) {
            for p in cfg.block(b, bs) {
                if p.is_hot() {
                    hot += 1;
                }
                max_chars = max_chars.max(p.body_chars);
                bytes += p.body_chars;
            }
        }
        // Hot posts exist but are rare.
        assert!(hot > 0, "no hot posts generated");
        assert!(hot < cfg.posts / 100, "too many hot posts: {hot}");
        // The hottest approaches the configured ceiling.
        assert!(max_chars > cfg.max_post_chars / 2, "max {max_chars}");
        // Total bytes near target.
        let err = (bytes as f64 - cfg.total_bytes.as_u64() as f64).abs()
            / cfg.total_bytes.as_u64() as f64;
        assert!(err < 0.35, "bytes {bytes} err {err}");
    }

    #[test]
    fn post_bloat_tracks_body() {
        let p = Post {
            id: 1,
            body_chars: 1000,
            answers: 2,
            score: 3,
        };
        assert!(p.heap_bytes() > 2000); // UTF-16 + headers
        assert!(!p.is_hot());
        let h = Post {
            id: 2,
            body_chars: 40_000,
            answers: 100,
            score: 9,
        };
        assert!(h.is_hot());
    }
}
