//! Wikipedia-style articles: Zipf word frequencies (IMC / IIB / WCM) and
//! heavy-tailed sentence lengths (CRP's lemmatizer killer — a few very
//! long sentences whose per-sentence scratch memory is ~1000× the
//! sentence itself, §2).

use simcore::jbloat::{self, HeapSized};
use simcore::{prof, ByteSize, DetRng};

use crate::words::WordDist;

/// One article.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Article {
    /// Article id.
    pub id: u64,
    /// Word ids, in order.
    pub words: Vec<u32>,
    /// Sentence lengths in characters (sums to roughly `chars`).
    pub sentence_chars: Vec<u32>,
    /// Total characters.
    pub chars: u64,
}

impl HeapSized for Article {
    fn heap_bytes(&self) -> u64 {
        jbloat::string(self.chars) + jbloat::object(2, 16)
    }

    fn ser_bytes(&self) -> u64 {
        self.chars
    }
}

/// Generator for a Wikipedia dataset (scaled 1/1024).
#[derive(Clone, Debug)]
pub struct WikipediaConfig {
    /// Dataset label ("49GB" full dump or "5GB" sample).
    pub label: &'static str,
    /// Scaled article count.
    pub articles: u64,
    /// Scaled payload bytes.
    pub total_bytes: ByteSize,
    /// Longest sentence in characters (CRP's pain point).
    pub max_sentence_chars: u64,
    /// Vocabulary size.
    pub vocab: usize,
    /// Generator seed.
    pub seed: u64,
    dist: WordDist,
}

impl WikipediaConfig {
    /// The paper's "Wikipedia FD 49GB" (4.7M articles), scaled.
    pub fn full_dump(seed: u64) -> Self {
        Self::new("49GB", 4_700_000 / simcore::SCALE, ByteSize::gib(49), seed)
    }

    /// The paper's "Wikipedia SP 5GB" sample (490K articles), scaled.
    pub fn sample(seed: u64) -> Self {
        Self::new("5GB", 490_000 / simcore::SCALE, ByteSize::gib(5), seed)
    }

    fn new(label: &'static str, articles: u64, paper_bytes: ByteSize, seed: u64) -> Self {
        WikipediaConfig {
            label,
            articles,
            total_bytes: ByteSize(paper_bytes.as_u64() / simcore::SCALE),
            max_sentence_chars: 16 * 1024,
            vocab: 65_536,
            seed,
            dist: WordDist::new(65_536, 1.0),
        }
    }

    /// Mean characters per article.
    pub fn mean_chars(&self) -> u64 {
        self.total_bytes.as_u64() / self.articles.max(1)
    }

    /// Number of blocks at `block_size`.
    pub fn num_blocks(&self, block_size: ByteSize) -> u64 {
        self.total_bytes
            .as_u64()
            .div_ceil(block_size.as_u64())
            .max(1)
    }

    /// Generates block `index` deterministically.
    pub fn block(&self, index: u64, block_size: ByteSize) -> Vec<Article> {
        let _wall = prof::wall_timer(prof::Stage::Generate);
        let n_blocks = self.num_blocks(block_size);
        assert!(index < n_blocks, "block {index} out of {n_blocks}");
        // Spread the division remainder across blocks so no block is
        // oversized (block i covers [i*T/n, (i+1)*T/n)).
        let first = index * self.articles / n_blocks;
        let count = (index + 1) * self.articles / n_blocks - first;
        let mut rng = DetRng::new(self.seed).fork(index);
        let mean = self.mean_chars();
        // `Range<u64>` is not `ExactSizeIterator`, so a plain collect
        // would grow the vec; pre-size it instead.
        let mut articles = Vec::with_capacity(count as usize);
        for i in 0..count {
            // Article length varies ±60% around the mean.
            let chars = rng.range_inclusive(mean * 2 / 5, mean * 8 / 5);
            // ~6.5 chars per word (word + space).
            let n_words = (chars / 6).max(1) as usize;
            let words = self.dist.sample_many(&mut rng, n_words);
            // Split into sentences with a heavy-tailed length mix
            // (bounded Pareto mean ≈ 80 chars; the capacity guess only
            // has to be in the right ballpark to avoid regrows).
            let mut sentence_chars = Vec::with_capacity((chars / 64 + 1) as usize);
            let mut remaining = chars;
            while remaining > 0 {
                let s = rng
                    .bounded_pareto(30, self.max_sentence_chars, 1.6)
                    .min(remaining) as u32;
                sentence_chars.push(s.max(1));
                remaining = remaining.saturating_sub(s as u64);
            }
            articles.push(Article {
                id: first + i,
                words,
                sentence_chars,
                chars,
            });
        }
        prof::count(prof::Stage::Generate, 1, articles.len() as u64);
        articles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_scaled() {
        let fd = WikipediaConfig::full_dump(1);
        assert_eq!(fd.articles, 4589);
        assert_eq!(fd.total_bytes, ByteSize::mib(49));
        let sp = WikipediaConfig::sample(1);
        assert_eq!(sp.articles, 478);
        assert_eq!(sp.total_bytes, ByteSize::mib(5));
    }

    #[test]
    fn blocks_deterministic_and_complete() {
        let cfg = WikipediaConfig::sample(2);
        let bs = ByteSize::kib(128);
        assert_eq!(cfg.block(0, bs), cfg.block(0, bs));
        let total: u64 = (0..cfg.num_blocks(bs))
            .map(|b| cfg.block(b, bs).len() as u64)
            .sum();
        assert_eq!(total, cfg.articles);
    }

    #[test]
    fn sentences_cover_article_and_have_long_tail() {
        let cfg = WikipediaConfig::sample(3);
        let mut longest = 0u32;
        for art in cfg.block(0, ByteSize::kib(128)) {
            let sum: u64 = art.sentence_chars.iter().map(|&c| c as u64).sum();
            assert!(sum >= art.chars, "sentences must cover the article");
            longest = longest.max(*art.sentence_chars.iter().max().unwrap());
        }
        assert!(longest > 1000, "no long sentences: {longest}");
    }

    #[test]
    fn word_frequencies_are_zipfian() {
        let cfg = WikipediaConfig::sample(4);
        let mut counts = std::collections::BTreeMap::new();
        for art in cfg.block(0, ByteSize::kib(128)) {
            for w in art.words {
                *counts.entry(w).or_insert(0u64) += 1;
            }
        }
        let top = counts.values().max().copied().unwrap_or(0);
        let total: u64 = counts.values().sum();
        // The hottest word should carry a few percent of all mass.
        assert!(top as f64 > total as f64 * 0.01, "top {top} of {total}");
    }

    #[test]
    fn bytes_near_target() {
        let cfg = WikipediaConfig::sample(5);
        let bs = ByteSize::kib(256);
        let mut bytes = 0u64;
        for b in 0..cfg.num_blocks(bs) {
            bytes += cfg.block(b, bs).iter().map(|a| a.chars).sum::<u64>();
        }
        let err = (bytes as f64 - cfg.total_bytes.as_u64() as f64).abs()
            / cfg.total_bytes.as_u64() as f64;
        assert!(err < 0.25, "bytes {bytes} err {err}");
    }
}
