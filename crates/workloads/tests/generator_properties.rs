//! Property tests over all dataset generators: block decomposition must
//! cover every record exactly once at any block size, and the headline
//! distribution properties must hold for arbitrary seeds.

use proptest::prelude::*;
use simcore::ByteSize;
use workloads::stackoverflow::StackOverflowConfig;
use workloads::webmap::{WebmapConfig, WebmapSize};
use workloads::wikipedia::WikipediaConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Webmap blocks tile the vertex space for any block size.
    #[test]
    fn webmap_blocks_tile_for_any_block_size(
        seed in 0u64..1000,
        block_kib in 32u64..512,
    ) {
        let cfg = WebmapConfig::preset(WebmapSize::G3, seed);
        let bs = ByteSize::kib(block_kib);
        let mut next_expected = 0u64;
        for b in 0..cfg.num_blocks(bs) {
            for rec in cfg.block(b, bs) {
                prop_assert_eq!(rec.vertex, next_expected);
                next_expected += 1;
            }
        }
        prop_assert_eq!(next_expected, cfg.vertices);
    }

    /// StackOverflow posts tile and keep their byte target for any seed.
    #[test]
    fn stackoverflow_blocks_tile(seed in 0u64..1000, block_kib in 64u64..512) {
        let cfg = StackOverflowConfig::full_dump(seed);
        let bs = ByteSize::kib(block_kib);
        let mut ids = 0u64;
        let mut bytes = 0u64;
        for b in 0..cfg.num_blocks(bs) {
            for p in cfg.block(b, bs) {
                prop_assert_eq!(p.id, ids);
                ids += 1;
                bytes += p.body_chars;
            }
        }
        prop_assert_eq!(ids, cfg.posts);
        let err = (bytes as f64 - cfg.total_bytes.as_u64() as f64).abs()
            / cfg.total_bytes.as_u64() as f64;
        prop_assert!(err < 0.5, "bytes {} err {}", bytes, err);
    }

    /// Wikipedia articles tile; every article's sentences cover it.
    #[test]
    fn wikipedia_blocks_tile(seed in 0u64..1000) {
        let cfg = WikipediaConfig::sample(seed);
        let bs = ByteSize::kib(128);
        let mut ids = 0u64;
        for b in 0..cfg.num_blocks(bs) {
            for a in cfg.block(b, bs) {
                prop_assert_eq!(a.id, ids);
                ids += 1;
                let sum: u64 = a.sentence_chars.iter().map(|&c| c as u64).sum();
                prop_assert!(sum >= a.chars);
                prop_assert!(!a.words.is_empty());
            }
        }
        prop_assert_eq!(ids, cfg.articles);
    }

    /// No generated block's *object form* dwarfs its neighbours: the
    /// remainder-spreading fix bounds block skew (oversized blocks were
    /// a real bug — a 1MiB split OOMed every mapper it met).
    #[test]
    fn wikipedia_block_sizes_are_balanced(seed in 0u64..500) {
        let cfg = WikipediaConfig::sample(seed);
        let bs = ByteSize::kib(128);
        let counts: Vec<usize> =
            (0..cfg.num_blocks(bs)).map(|b| cfg.block(b, bs).len()).collect();
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        prop_assert!(max - min <= 1, "block record counts must differ by <=1: {min}..{max}");
    }
}
