//! Parallel sweep executor for the table/figure binaries.
//!
//! Every harness binary runs a sweep of independent deterministic
//! simulations. Each simulation is a self-contained single-threaded
//! virtual-time world, so whole runs can fan out across OS threads
//! without perturbing results: workers compute raw run data, and the
//! caller assembles rows in the original spec order, keeping the
//! printed tables byte-identical to a serial run.
//!
//! The executor also captures per-run wall-clock time and, via
//! [`SweepLog`], emits a machine-readable `BENCH_sweeps.json` next to
//! the text artifacts so perf changes are visible run over run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use simcore::{metrics, prof, tracer};

/// One schedulable unit of a sweep: a label (for progress lines and
/// `BENCH_sweeps.json`) and a closure that runs one simulation.
///
/// The lifetime lets jobs borrow from the caller's stack (configs,
/// labels): the pool runs under [`std::thread::scope`], so borrows
/// outlive every worker.
pub struct RunSpec<'a, R> {
    /// Human-readable run id, e.g. `"table5 wc 72GB t4 g32KiB"`.
    pub label: String,
    /// The run itself. Builds its own world; returns plain data.
    pub job: Box<dyn FnOnce() -> R + Send + 'a>,
}

/// Builds a [`RunSpec`] from a label and closure.
pub fn spec<'a, R>(
    label: impl Into<String>,
    job: impl FnOnce() -> R + Send + 'a,
) -> RunSpec<'a, R> {
    RunSpec {
        label: label.into(),
        job: Box::new(job),
    }
}

/// The result of one run, in the same position as its spec.
pub struct RunOutcome<R> {
    /// The spec's label.
    pub label: String,
    /// What the job returned.
    pub result: R,
    /// Host wall-clock time for this run, in milliseconds.
    pub wall_ms: u64,
    /// The run's harvested trace events, when `--trace` armed the
    /// tracer (merged in deterministic `(time, node, seq)` order).
    pub trace: Option<tracer::RunTrace>,
    /// The run's folded metrics, when `--metrics` armed the registry
    /// (sampled on the virtual-time cadence grid, `(time, node,
    /// metric)` order).
    pub metrics: Option<metrics::RunMetrics>,
}

/// Resolves a `--jobs` value: `0` means "all available cores".
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Default worker count from an `ITASK_BENCH_JOBS` environment value
/// (CI and local sweeps set it once instead of hard-coding `--jobs` per
/// invocation). `None`, empty, or unparsable values fall back to `0`
/// (auto) — with a stderr warning when a value was present but bad.
pub fn env_jobs_default(val: Option<&str>) -> usize {
    match val {
        None => 0,
        Some(v) if v.trim().is_empty() => 0,
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("ignoring invalid ITASK_BENCH_JOBS value: {v}");
                0
            }
        },
    }
}

/// Extracts `--jobs N` / `--jobs=N` from an argument list (mutating
/// it), returning the requested worker count (`0` = auto). With no flag
/// present, falls back to the `ITASK_BENCH_JOBS` environment variable.
/// Exits with an error message on a malformed flag value.
pub fn take_jobs_flag(args: &mut Vec<String>) -> usize {
    let mut jobs = env_jobs_default(std::env::var("ITASK_BENCH_JOBS").ok().as_deref());
    let mut i = 0;
    while i < args.len() {
        let (hit, value) = if args[i] == "--jobs" {
            if i + 1 >= args.len() {
                eprintln!("--jobs requires a value");
                std::process::exit(2);
            }
            let v = args.remove(i + 1);
            args.remove(i);
            (true, v)
        } else if let Some(v) = args[i].strip_prefix("--jobs=") {
            let v = v.to_string();
            args.remove(i);
            (true, v)
        } else {
            (false, String::new())
        };
        if hit {
            match value.parse::<usize>() {
                Ok(n) if n > 0 => jobs = n,
                _ => {
                    eprintln!("invalid --jobs value: {value}");
                    std::process::exit(2);
                }
            }
        } else {
            i += 1;
        }
    }
    jobs
}

/// Default shard count from an `ITASK_BENCH_SHARDS` environment value
/// (1 = serial). `None`, empty, zero, or unparsable values fall back to
/// `1` — with a stderr warning when a value was present but bad.
pub fn env_shards_default(val: Option<&str>) -> usize {
    match val {
        None => 1,
        Some(v) if v.trim().is_empty() => 1,
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("ignoring invalid ITASK_BENCH_SHARDS value: {v}");
                1
            }
        },
    }
}

/// Extracts `--shards N` / `--shards=N` from an argument list (mutating
/// it) and installs the count as the process-wide default via
/// [`simcluster::set_shards`]. With no flag present, falls back to the
/// `ITASK_BENCH_SHARDS` environment variable (default 1 = serial).
/// Exits with an error message on a malformed flag value.
///
/// Shards split the *cluster engine* — node simulators advance in
/// lockstep rounds across a fixed worker pool — and are orthogonal to
/// `--jobs` (which parallelizes whole sweep configurations). Stdout,
/// traces, and profiler counters are byte-identical at any shard
/// count.
pub fn take_shards_flag(args: &mut Vec<String>) -> usize {
    let mut shards = env_shards_default(std::env::var("ITASK_BENCH_SHARDS").ok().as_deref());
    let mut i = 0;
    while i < args.len() {
        let (hit, value) = if args[i] == "--shards" {
            if i + 1 >= args.len() {
                eprintln!("--shards requires a value");
                std::process::exit(2);
            }
            let v = args.remove(i + 1);
            args.remove(i);
            (true, v)
        } else if let Some(v) = args[i].strip_prefix("--shards=") {
            let v = v.to_string();
            args.remove(i);
            (true, v)
        } else {
            (false, String::new())
        };
        if hit {
            match value.parse::<usize>() {
                Ok(n) if n > 0 => shards = n,
                _ => {
                    eprintln!("invalid --shards value: {value}");
                    std::process::exit(2);
                }
            }
        } else {
            i += 1;
        }
    }
    simcluster::set_shards(shards);
    shards
}

/// Extracts `--profile` from an argument list (mutating it). When the
/// flag is present, resets and arms the in-simulator profiler including
/// its wall-clock sidecar; [`SweepLog::finish`] then embeds the
/// per-stage breakdown in the binary's JSON sidecar (merged into
/// `BENCH_sweeps.json`) and writes a human-readable
/// `<dir>/sweeps/<bin>.profile.txt`.
///
/// Stdout is untouched: the deterministic tables stay byte-identical
/// with and without `--profile`.
pub fn take_profile_flag(args: &mut Vec<String>) -> bool {
    let mut on = false;
    args.retain(|a| {
        if a == "--profile" {
            on = true;
            false
        } else {
            true
        }
    });
    if on {
        prof::reset();
        prof::enable(true);
    }
    on
}

/// Extracts `--trace <path>` / `--trace=<path>` from an argument list
/// (mutating it). When present, arms the global [`tracer`]; the
/// executor then buffers each run's events and [`SweepLog::finish`]
/// writes Chrome trace-event JSON to `<path>` plus a compact JSONL twin
/// to `<path>.jsonl` (the format `tracectl` consumes).
///
/// Stdout is untouched: the deterministic tables stay byte-identical
/// with and without `--trace`, and the trace files themselves are
/// byte-identical at any `--jobs`.
pub fn take_trace_flag(args: &mut Vec<String>) -> Option<String> {
    let mut path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--trace" {
            if i + 1 >= args.len() {
                eprintln!("--trace requires a path");
                std::process::exit(2);
            }
            let v = args.remove(i + 1);
            args.remove(i);
            path = Some(v);
        } else if let Some(v) = args[i].strip_prefix("--trace=") {
            let v = v.to_string();
            args.remove(i);
            path = Some(v);
        } else {
            i += 1;
        }
    }
    if path.is_some() {
        tracer::enable();
    }
    path
}

/// Extracts `--metrics <path>` / `--metrics=<path>` and the optional
/// `--metrics-cadence-ms N` / `--metrics-cadence-ms=N` from an argument
/// list (mutating it). When a path is present, arms the global
/// [`metrics`] registry (and installs the cadence if one was given);
/// the executor then folds each run's metric stream on its worker and
/// [`SweepLog::finish`] writes JSONL samples to `<path>` plus an
/// OpenMetrics-style final snapshot to `<path>.om`.
///
/// Stdout is untouched: the deterministic tables stay byte-identical
/// with and without `--metrics`, and the dumps themselves are
/// byte-identical at any `--jobs` or `--shards`.
pub fn take_metrics_flag(args: &mut Vec<String>) -> Option<String> {
    let mut path: Option<String> = None;
    let mut cadence_ms: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--metrics" {
            if i + 1 >= args.len() {
                eprintln!("--metrics requires a path");
                std::process::exit(2);
            }
            let v = args.remove(i + 1);
            args.remove(i);
            path = Some(v);
        } else if let Some(v) = args[i].strip_prefix("--metrics=") {
            let v = v.to_string();
            args.remove(i);
            path = Some(v);
        } else if args[i] == "--metrics-cadence-ms" || args[i].starts_with("--metrics-cadence-ms=")
        {
            let value = if args[i] == "--metrics-cadence-ms" {
                if i + 1 >= args.len() {
                    eprintln!("--metrics-cadence-ms requires a value");
                    std::process::exit(2);
                }
                let v = args.remove(i + 1);
                args.remove(i);
                v
            } else {
                let v = args[i]["--metrics-cadence-ms=".len()..].to_string();
                args.remove(i);
                v
            };
            match value.parse::<u64>() {
                Ok(n) if n > 0 => cadence_ms = Some(n),
                _ => {
                    eprintln!("invalid --metrics-cadence-ms value: {value}");
                    std::process::exit(2);
                }
            }
        } else {
            i += 1;
        }
    }
    if path.is_some() {
        if let Some(ms) = cadence_ms {
            metrics::set_cadence_ns(ms.saturating_mul(1_000_000));
        }
        metrics::enable();
    }
    path
}

/// The shared flag surface of every bench binary, parsed in one call.
///
/// [`harness`] consumes the common flags — `--jobs`, `--shards`,
/// `--profile`, `--trace`, `--metrics`, `--metrics-cadence-ms` — with
/// identical semantics everywhere (arming the profiler, tracer, and
/// metrics registry as a side effect, exactly like the individual
/// `take_*_flag` helpers). Binary-specific boolean flags come off with
/// [`Harness::flag`]; whatever remains is positional. [`Harness::log`]
/// then builds a [`SweepLog`] with the trace and metrics sinks already
/// attached, so `--trace`, `--profile`, and `--metrics` compose on
/// every binary without per-binary plumbing.
pub struct Harness {
    /// Arguments left after the common flags were consumed.
    pub args: Vec<String>,
    /// Resolved `--jobs` (0 = auto).
    pub jobs: usize,
    /// Resolved `--shards` (already installed process-wide).
    pub shards: usize,
    /// Whether `--profile` armed the profiler.
    pub profile: bool,
    /// The `--trace` path, if any (tracer already armed).
    pub trace: Option<String>,
    /// The `--metrics` path, if any (registry already armed).
    pub metrics: Option<String>,
}

/// Parses the process arguments into a [`Harness`].
pub fn harness() -> Harness {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    parse_harness(&mut args)
}

/// Flag-parsing core of [`harness`], testable on a plain argument list.
pub fn parse_harness(args: &mut Vec<String>) -> Harness {
    let jobs = take_jobs_flag(args);
    let shards = take_shards_flag(args);
    let profile = take_profile_flag(args);
    let trace = take_trace_flag(args);
    let metrics = take_metrics_flag(args);
    Harness {
        args: std::mem::take(args),
        jobs,
        shards,
        profile,
        trace,
        metrics,
    }
}

impl Harness {
    /// Consumes a binary-specific boolean flag (e.g. `--quick`),
    /// returning whether it was present.
    pub fn flag(&mut self, name: &str) -> bool {
        let before = self.args.len();
        self.args.retain(|a| a != name);
        self.args.len() != before
    }

    /// Builds the binary's [`SweepLog`] with the trace and metrics
    /// sinks attached. Call after any flags that pick the log name
    /// (e.g. `service` vs `service-scale`).
    pub fn log(&self, bin: &str) -> SweepLog {
        let mut log = SweepLog::new(bin, self.jobs);
        log.set_trace(self.trace.clone());
        log.set_metrics(self.metrics.clone());
        log
    }
}

/// Runs every spec on a fixed pool of `jobs` worker threads (`0` =
/// all available cores) and returns outcomes in spec order.
///
/// Workers claim specs through a shared atomic cursor, so a slow run
/// never blocks the queue; one stderr progress line is printed per
/// completed run (`[k/n] <label> <wall_ms>ms`). With `jobs = 1` the
/// specs execute sequentially in order, exactly like the old serial
/// harness.
pub fn run_all<'a, R: Send>(jobs: usize, specs: Vec<RunSpec<'a, R>>) -> Vec<RunOutcome<R>> {
    let n = specs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = effective_jobs(jobs).min(n);
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunSpec<'a, R>>>> =
        specs.into_iter().map(|s| Mutex::new(Some(s))).collect();
    let results: Vec<Mutex<Option<RunOutcome<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let spec = slots[i]
                    .lock()
                    .expect("sweep slot poisoned")
                    .take()
                    .expect("sweep spec claimed twice");
                let t0 = Instant::now();
                tracer::begin_run();
                let result = (spec.job)();
                let (trace, run_metrics) = split_harvest(tracer::take_run());
                let wall_ms = t0.elapsed().as_millis() as u64;
                let k = done.fetch_add(1, Ordering::Relaxed) + 1;
                eprintln!("[{k}/{n}] {} {wall_ms}ms", spec.label);
                *results[i].lock().expect("sweep result poisoned") = Some(RunOutcome {
                    label: spec.label,
                    result,
                    wall_ms,
                    trace,
                    metrics: run_metrics,
                });
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("sweep result poisoned")
                .expect("sweep worker died before storing a result")
        })
        .collect()
}

/// Splits one run's harvested event stream into its trace and metrics
/// views. Metric ops ride the tracer's buffers (that is what makes them
/// deterministic under sharding and speculation), so with both planes
/// armed the harvest interleaves them; each consumer only sees its own
/// events. The fold runs here — on the sweep worker — so `--jobs`
/// parallelism covers it.
fn split_harvest(
    harvest: Option<tracer::RunTrace>,
) -> (Option<tracer::RunTrace>, Option<metrics::RunMetrics>) {
    let Some(events) = harvest else {
        return (None, None);
    };
    let want_trace = tracer::is_enabled();
    if !metrics::is_enabled() {
        return (want_trace.then_some(events), None);
    }
    let (metric_events, trace_events): (Vec<_>, Vec<_>) = events
        .into_iter()
        .partition(|e| matches!(e.data, tracer::TraceData::Metric { .. }));
    let folded = metrics::fold(&metric_events, metrics::cadence_ns());
    (want_trace.then_some(trace_events), Some(folded))
}

/// Per-binary wall-clock log, persisted as JSON.
///
/// Each binary appends every completed run, then [`SweepLog::finish`]
/// writes a per-binary sidecar (`<dir>/sweeps/<bin>.json`) and
/// regenerates the merged `<dir>/BENCH_sweeps.json` from all sidecars
/// present, so concurrent binaries never clobber each other's rows.
/// `<dir>` is `bench_results`, overridable via `ITASK_BENCH_RESULTS`.
pub struct SweepLog {
    bin: String,
    jobs: usize,
    runs: Vec<(String, u64)>,
    started: Instant,
    trace_path: Option<String>,
    stream: Option<TraceStream>,
    metrics_path: Option<String>,
    mstream: Option<MetricsStream>,
}

/// Incremental trace writer: each absorbed run is rendered, appended to
/// both files, and flushed immediately, so the log never holds more
/// than one run's events beyond the executor's own buffers — a sweep of
/// hundreds of traced runs streams to disk instead of accumulating.
/// The Chrome array's comma state (`first`) lives here so the streamed
/// bytes are identical to a whole-buffer render.
struct TraceStream {
    chrome: std::io::BufWriter<std::fs::File>,
    jsonl: std::io::BufWriter<std::fs::File>,
    run: usize,
    first: bool,
}

impl TraceStream {
    fn open(path: &str) -> std::io::Result<Self> {
        use std::io::Write;
        let path = std::path::Path::new(path);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut chrome = std::io::BufWriter::new(std::fs::File::create(path)?);
        chrome.write_all(tracer::CHROME_HEADER.as_bytes())?;
        let mut jsonl_path = path.as_os_str().to_owned();
        jsonl_path.push(".jsonl");
        let jsonl = std::io::BufWriter::new(std::fs::File::create(jsonl_path)?);
        Ok(TraceStream {
            chrome,
            jsonl,
            run: 0,
            first: true,
        })
    }

    fn append(&mut self, label: &str, events: &tracer::RunTrace) -> std::io::Result<()> {
        use std::io::Write;
        self.chrome
            .write_all(tracer::chrome_run(self.run, label, events, &mut self.first).as_bytes())?;
        self.jsonl
            .write_all(tracer::jsonl_run(self.run, label, events).as_bytes())?;
        self.run += 1;
        Ok(())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        use std::io::Write;
        self.chrome.flush()?;
        self.jsonl.flush()
    }

    fn close(mut self) -> std::io::Result<()> {
        use std::io::Write;
        self.chrome.write_all(tracer::CHROME_FOOTER.as_bytes())?;
        self.chrome.flush()?;
        self.jsonl.flush()
    }
}

/// Incremental metrics writer: sampled points stream to `<path>` as
/// JSONL per absorbed run; the folded runs are retained (they are tiny
/// next to the raw event stream) so [`MetricsStream::close`] can render
/// the OpenMetrics-style final snapshot to `<path>.om`.
struct MetricsStream {
    jsonl: std::io::BufWriter<std::fs::File>,
    om_path: std::ffi::OsString,
    runs: Vec<(String, metrics::RunMetrics)>,
}

impl MetricsStream {
    fn open(path: &str) -> std::io::Result<Self> {
        let path = std::path::Path::new(path);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let jsonl = std::io::BufWriter::new(std::fs::File::create(path)?);
        let mut om_path = path.as_os_str().to_owned();
        om_path.push(".om");
        Ok(MetricsStream {
            jsonl,
            om_path,
            runs: Vec::new(),
        })
    }

    fn append(&mut self, label: &str, m: &metrics::RunMetrics) -> std::io::Result<()> {
        use std::io::Write;
        self.jsonl
            .write_all(metrics::jsonl_run(self.runs.len(), label, m).as_bytes())?;
        self.runs.push((label.to_string(), m.clone()));
        Ok(())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        use std::io::Write;
        self.jsonl.flush()
    }

    fn close(mut self) -> std::io::Result<()> {
        self.flush()?;
        std::fs::write(&self.om_path, metrics::openmetrics(&self.runs))
    }
}

impl SweepLog {
    /// Starts a log for one binary; `jobs` is the resolved worker count.
    pub fn new(bin: &str, jobs: usize) -> Self {
        SweepLog {
            bin: bin.to_string(),
            jobs: effective_jobs(jobs),
            runs: Vec::new(),
            started: Instant::now(),
            trace_path: None,
            stream: None,
            metrics_path: None,
            mstream: None,
        }
    }

    /// Arms trace export: each absorbed batch streams Chrome JSON to
    /// `path` and JSONL to `path.jsonl` (run index = batch order), and
    /// [`SweepLog::finish`] closes the files. Pass the value returned by
    /// [`take_trace_flag`].
    pub fn set_trace(&mut self, path: Option<String>) {
        self.trace_path = path;
    }

    /// Arms metrics export: each absorbed batch streams JSONL samples
    /// to `path` (run index = batch order) and [`SweepLog::finish`]
    /// writes the final OpenMetrics snapshot to `path.om`. Pass the
    /// value returned by [`take_metrics_flag`].
    pub fn set_metrics(&mut self, path: Option<String>) {
        self.metrics_path = path;
    }

    /// Records the wall-clock of every outcome in a batch, streaming
    /// any harvested traces straight to the trace files (flushed per
    /// batch — nothing is buffered across batches).
    pub fn absorb<R>(&mut self, outcomes: &[RunOutcome<R>]) {
        self.runs.reserve(outcomes.len());
        let mut wrote = false;
        let mut wrote_metrics = false;
        for o in outcomes {
            self.runs.push((o.label.clone(), o.wall_ms));
            if let Some(trace) = &o.trace {
                if let Err(e) = self.append_trace(&o.label, trace) {
                    eprintln!("[sweep] could not stream trace, disarming: {e}");
                    self.trace_path = None;
                    self.stream = None;
                }
                wrote = true;
            }
            if let Some(m) = &o.metrics {
                if let Err(e) = self.append_metrics(&o.label, m) {
                    eprintln!("[sweep] could not stream metrics, disarming: {e}");
                    self.metrics_path = None;
                    self.mstream = None;
                }
                wrote_metrics = true;
            }
        }
        if wrote {
            if let Some(stream) = &mut self.stream {
                if let Err(e) = stream.flush() {
                    eprintln!("[sweep] could not flush trace files: {e}");
                }
            }
        }
        if wrote_metrics {
            if let Some(stream) = &mut self.mstream {
                if let Err(e) = stream.flush() {
                    eprintln!("[sweep] could not flush metrics file: {e}");
                }
            }
        }
    }

    /// Appends one run to the trace files, opening them on first use.
    fn append_trace(&mut self, label: &str, trace: &tracer::RunTrace) -> std::io::Result<()> {
        if self.stream.is_none() {
            let Some(path) = &self.trace_path else {
                return Ok(());
            };
            self.stream = Some(TraceStream::open(path)?);
        }
        self.stream
            .as_mut()
            .expect("just opened")
            .append(label, trace)
    }

    /// Appends one run to the metrics files, opening them on first use.
    fn append_metrics(&mut self, label: &str, m: &metrics::RunMetrics) -> std::io::Result<()> {
        if self.mstream.is_none() {
            let Some(path) = &self.metrics_path else {
                return Ok(());
            };
            self.mstream = Some(MetricsStream::open(path)?);
        }
        self.mstream.as_mut().expect("just opened").append(label, m)
    }

    /// Records a single timed step that ran outside the executor.
    pub fn push(&mut self, label: impl Into<String>, wall_ms: u64) {
        self.runs.push((label.into(), wall_ms));
    }

    /// Writes the sidecar and re-merges `BENCH_sweeps.json`.
    ///
    /// IO failures are reported on stderr but never fail the binary:
    /// the tables themselves are the primary artifact.
    pub fn finish(mut self) {
        let total_ms = self.started.elapsed().as_millis() as u64;
        if let Err(e) = self.finish_traces() {
            eprintln!("[sweep] could not write trace files: {e}");
        }
        if let Err(e) = self.finish_metrics() {
            eprintln!("[sweep] could not write metrics files: {e}");
        }
        if let Err(e) = self.write(total_ms) {
            eprintln!("[sweep] could not write BENCH_sweeps.json: {e}");
        }
    }

    /// Closes the trace files (writing the Chrome footer). A traced
    /// sweep that harvested zero runs still produces valid empty files.
    fn finish_traces(&mut self) -> std::io::Result<()> {
        if self.stream.is_none() {
            if let Some(path) = &self.trace_path {
                self.stream = Some(TraceStream::open(path)?);
            }
        }
        match self.stream.take() {
            Some(stream) => stream.close(),
            None => Ok(()),
        }
    }

    /// Closes the metrics files (writing the `.om` snapshot). A metered
    /// sweep that harvested zero runs still produces valid empty files.
    fn finish_metrics(&mut self) -> std::io::Result<()> {
        if self.mstream.is_none() {
            if let Some(path) = &self.metrics_path {
                self.mstream = Some(MetricsStream::open(path)?);
            }
        }
        match self.mstream.take() {
            Some(stream) => stream.close(),
            None => Ok(()),
        }
    }

    fn write(&self, total_ms: u64) -> std::io::Result<()> {
        let dir = results_dir();
        let sweep_dir = dir.join("sweeps");
        std::fs::create_dir_all(&sweep_dir)?;
        // With `--profile` armed, embed the per-stage breakdown (the
        // deterministic counters plus the wall sidecar) and drop a
        // human-readable twin next to the JSON.
        let profile = prof::is_enabled().then(prof::snapshot);
        let mut body = String::new();
        body.push_str("{\n");
        body.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        body.push_str(&format!("  \"total_wall_ms\": {total_ms},\n"));
        if let Some(snap) = &profile {
            body.push_str(&format!("  \"profile\": {},\n", prof::to_json(snap)));
            std::fs::write(
                sweep_dir.join(format!("{}.profile.txt", self.bin)),
                prof::render_sidecar(snap),
            )?;
        }
        body.push_str("  \"runs\": [\n");
        for (i, (label, ms)) in self.runs.iter().enumerate() {
            let sep = if i + 1 == self.runs.len() { "" } else { "," };
            body.push_str(&format!(
                "    {{\"label\": \"{}\", \"wall_ms\": {ms}}}{sep}\n",
                json_escape(label)
            ));
        }
        body.push_str("  ]\n}");
        std::fs::write(sweep_dir.join(format!("{}.json", self.bin)), &body)?;
        merge_sweeps(&dir)
    }
}

/// Rebuilds `<dir>/BENCH_sweeps.json` from every sidecar in
/// `<dir>/sweeps/`, sorted by binary name for stable output.
fn merge_sweeps(dir: &std::path::Path) -> std::io::Result<()> {
    let sweep_dir = dir.join("sweeps");
    let mut entries: Vec<(String, String)> = Vec::new();
    for entry in std::fs::read_dir(&sweep_dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "json") {
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or_default()
                .to_string();
            entries.push((name, std::fs::read_to_string(&path)?));
        }
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str("  \"binaries\": {\n");
    for (i, (name, body)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        let indented = body.replace('\n', "\n    ");
        out.push_str(&format!("    \"{}\": {indented}{sep}\n", json_escape(name)));
    }
    out.push_str("  }\n}\n");
    std::fs::write(dir.join("BENCH_sweeps.json"), out)
}

fn results_dir() -> std::path::PathBuf {
    std::env::var_os("ITASK_BENCH_RESULTS")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("bench_results"))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_keep_spec_order() {
        let specs: Vec<RunSpec<'_, usize>> = (0..16usize)
            .map(|i| {
                spec(format!("job{i}"), move || {
                    // Vary the work so completion order scrambles.
                    let mut acc = i;
                    for _ in 0..((16 - i) * 1000) {
                        acc = acc.wrapping_mul(31).wrapping_add(7);
                    }
                    std::hint::black_box(acc);
                    i
                })
            })
            .collect();
        let out = run_all(4, specs);
        let got: Vec<usize> = out.iter().map(|o| o.result).collect();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
        assert_eq!(out[3].label, "job3");
    }

    #[test]
    fn serial_and_parallel_agree() {
        let mk = || {
            (0..8)
                .map(|i: u64| spec(format!("r{i}"), move || i * i))
                .collect::<Vec<_>>()
        };
        let a: Vec<u64> = run_all(1, mk()).into_iter().map(|o| o.result).collect();
        let b: Vec<u64> = run_all(4, mk()).into_iter().map(|o| o.result).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn jobs_flag_parsing() {
        let mut args = vec!["--quick".to_string(), "--jobs".into(), "3".into()];
        assert_eq!(take_jobs_flag(&mut args), 3);
        assert_eq!(args, vec!["--quick".to_string()]);
        let mut args = vec!["--jobs=7".to_string(), "wc".into()];
        assert_eq!(take_jobs_flag(&mut args), 7);
        assert_eq!(args, vec!["wc".to_string()]);
        let mut args = vec!["wc".to_string()];
        assert_eq!(take_jobs_flag(&mut args), 0);
    }

    #[test]
    fn env_default_parses_and_rejects() {
        // The pure helper is what `take_jobs_flag` consults when no
        // --jobs flag is present (flag wins when both are given).
        assert_eq!(env_jobs_default(None), 0);
        assert_eq!(env_jobs_default(Some("")), 0);
        assert_eq!(env_jobs_default(Some("  ")), 0);
        assert_eq!(env_jobs_default(Some("4")), 4);
        assert_eq!(env_jobs_default(Some(" 2 ")), 2);
        assert_eq!(env_jobs_default(Some("zero")), 0);
        assert_eq!(env_jobs_default(Some("-1")), 0);
    }

    #[test]
    fn trace_flag_parsing() {
        // Note: a hit arms the global tracer; disarm before leaving so
        // other tests in this binary see the default-off state.
        let mut args = vec!["--quick".to_string(), "--trace".into(), "out.json".into()];
        assert_eq!(take_trace_flag(&mut args).as_deref(), Some("out.json"));
        assert_eq!(args, vec!["--quick".to_string()]);
        let mut args = vec!["--trace=t/a.json".to_string(), "wc".into()];
        assert_eq!(take_trace_flag(&mut args).as_deref(), Some("t/a.json"));
        assert_eq!(args, vec!["wc".to_string()]);
        tracer::disable();
        let mut args = vec!["wc".to_string()];
        assert_eq!(take_trace_flag(&mut args), None);
        assert!(!tracer::is_enabled());
    }

    #[test]
    fn traced_sweep_writes_chrome_and_jsonl() {
        use simcore::{SimDuration, SimTime};
        let dir = std::env::temp_dir().join(format!("itask_sweeptrace_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        tracer::enable();
        let specs: Vec<RunSpec<'_, ()>> = (0..2u64)
            .map(|i| {
                spec(format!("run{i}"), move || {
                    tracer::emit(
                        None,
                        None,
                        SimTime::from_nanos(i),
                        SimDuration::ZERO,
                        tracer::TraceData::NodeCrash,
                    );
                })
            })
            .collect();
        let out = run_all(1, specs);
        tracer::disable();
        assert!(out
            .iter()
            .all(|o| o.trace.as_ref().is_some_and(|t| !t.is_empty())));
        let mut log = SweepLog::new("tracebin", 1);
        let trace_path = dir.join("trace.json");
        log.set_trace(Some(trace_path.to_string_lossy().into_owned()));
        // Absorb one run at a time: the stream must flush per batch, so
        // the JSONL grows on disk before finish() is ever called.
        log.absorb(&out[..1]);
        let partial = std::fs::read_to_string(dir.join("trace.json.jsonl")).unwrap();
        assert_eq!(partial.lines().count(), 2, "first batch on disk already");
        log.absorb(&out[1..]);
        log.finish_traces().unwrap();
        let chrome = std::fs::read_to_string(&trace_path).unwrap();
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("\"run1\""));
        // The streamed bytes must equal a whole-buffer render.
        let whole: Vec<(String, tracer::RunTrace)> = out
            .iter()
            .map(|o| (o.label.clone(), o.trace.clone().unwrap()))
            .collect();
        assert_eq!(chrome, tracer::chrome_json(&whole));
        let jsonl = std::fs::read_to_string(dir.join("trace.json.jsonl")).unwrap();
        assert_eq!(jsonl.lines().count(), 4); // 2 headers + 2 events
        assert_eq!(jsonl, tracer::jsonl(&whole));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_flag_parsing() {
        // Note: a hit arms the global registry; disarm before leaving
        // so other tests in this binary see the default-off state.
        let mut args = vec![
            "--quick".to_string(),
            "--metrics".into(),
            "m.jsonl".into(),
            "--metrics-cadence-ms=5".into(),
        ];
        assert_eq!(take_metrics_flag(&mut args).as_deref(), Some("m.jsonl"));
        assert_eq!(args, vec!["--quick".to_string()]);
        assert!(metrics::is_enabled());
        assert_eq!(metrics::cadence_ns(), 5_000_000);
        metrics::disable();
        metrics::set_cadence_ns(metrics::DEFAULT_CADENCE_NS);
        let mut args = vec!["--metrics=x/y.jsonl".to_string(), "wc".into()];
        assert_eq!(take_metrics_flag(&mut args).as_deref(), Some("x/y.jsonl"));
        assert_eq!(args, vec!["wc".to_string()]);
        metrics::disable();
        let mut args = vec!["wc".to_string()];
        assert_eq!(take_metrics_flag(&mut args), None);
        assert!(!metrics::is_enabled());
    }

    #[test]
    fn harness_takes_common_and_custom_flags() {
        let mut args = vec![
            "--jobs=2".to_string(),
            "--quick".into(),
            "wc".into(),
            "--shards=1".into(),
        ];
        let mut h = parse_harness(&mut args);
        assert_eq!(h.jobs, 2);
        assert_eq!(h.shards, 1);
        assert!(!h.profile);
        assert_eq!(h.trace, None);
        assert_eq!(h.metrics, None);
        assert!(h.flag("--quick"));
        assert!(!h.flag("--quick"), "flag consumed on first take");
        assert_eq!(h.args, vec!["wc".to_string()]);
    }

    #[test]
    fn trace_and_metrics_compose_in_one_sweep() {
        use simcore::{NodeId, SimDuration, SimTime};
        // Arms both global planes: serialize against the other arming
        // tests in this binary.
        let dir = std::env::temp_dir().join(format!("itask_sweepboth_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        tracer::enable();
        metrics::enable();
        let cadence = metrics::cadence_ns();
        let specs: Vec<RunSpec<'_, ()>> = (0..2u64)
            .map(|i| {
                spec(format!("run{i}"), move || {
                    tracer::emit(
                        None,
                        None,
                        SimTime::from_nanos(i),
                        SimDuration::ZERO,
                        tracer::TraceData::NodeCrash,
                    );
                    metrics::counter_add(
                        Some(NodeId(0)),
                        metrics::Metric::MemGcCount,
                        SimTime::from_nanos(cadence / 2),
                        3,
                    );
                })
            })
            .collect();
        let out = run_all(1, specs);
        tracer::disable();
        metrics::disable();
        for o in &out {
            let trace = o.trace.as_ref().expect("trace harvested");
            assert_eq!(trace.len(), 1, "metric ops must not leak into the trace");
            assert!(matches!(trace[0].data, tracer::TraceData::NodeCrash));
            let m = o.metrics.as_ref().expect("metrics folded");
            assert_eq!(m.points.len(), 1);
            assert_eq!(m.points[0].at, cadence);
            assert_eq!(m.points[0].value, 3);
        }
        let mut log = SweepLog::new("bothbin", 1);
        let trace_path = dir.join("trace.json");
        let metrics_path = dir.join("metrics.jsonl");
        log.set_trace(Some(trace_path.to_string_lossy().into_owned()));
        log.set_metrics(Some(metrics_path.to_string_lossy().into_owned()));
        log.absorb(&out);
        log.finish_traces().unwrap();
        log.finish_metrics().unwrap();
        let chrome = std::fs::read_to_string(&trace_path).unwrap();
        assert!(chrome.contains("\"traceEvents\""));
        let mj = std::fs::read_to_string(&metrics_path).unwrap();
        assert_eq!(mj.lines().count(), 4); // 2 run headers + 2 points
        assert!(mj.contains("\"metric\":\"mem.gc_count\""));
        let om = std::fs::read_to_string(dir.join("metrics.jsonl.om")).unwrap();
        assert!(om.contains("# TYPE mem_gc_count counter"));
        assert!(om.ends_with("# EOF\n"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_sweep_is_fine() {
        let out: Vec<RunOutcome<()>> = run_all(4, Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn sweep_log_writes_sidecar_and_merge() {
        let dir = std::env::temp_dir().join(format!("itask_sweeplog_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("ITASK_BENCH_RESULTS", &dir);
        let mut log = SweepLog::new("testbin", 1);
        log.push("alpha", 12);
        log.push("beta", 34);
        log.finish();
        std::env::remove_var("ITASK_BENCH_RESULTS");
        let sidecar = std::fs::read_to_string(dir.join("sweeps/testbin.json")).unwrap();
        assert!(sidecar.contains("\"alpha\""));
        let merged = std::fs::read_to_string(dir.join("BENCH_sweeps.json")).unwrap();
        assert!(merged.contains("\"testbin\""));
        assert!(merged.contains("\"host_cores\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
