//! Wall-clock trajectory tracking for `benchctl`.
//!
//! Every sweep binary appends its per-run wall times to
//! `bench_results/BENCH_sweeps.json`. `benchctl record` folds that file
//! into a compact committed baseline — one `(bin, label) → wall_ms`
//! entry, the median when a label repeats — and `benchctl gate`
//! compares a fresh sweeps file against the baseline, failing when any
//! run regressed past a tolerance factor or when a baseline label
//! disappeared (renamed labels must be re-recorded, not silently
//! dropped: label drift hides regressions).
//!
//! Wall times are host-dependent, so the gate is a *coarse* regression
//! tripwire (the CI default tolerance is generous); byte-exactness is
//! the goldens' job, not this one's.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::tracefmt::{parse, Json};

/// One `(bin, label)` wall-time entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// The sweep binary the run belongs to.
    pub bin: String,
    /// The run's sweep label.
    pub label: String,
    /// Median wall milliseconds across that label's runs.
    pub wall_ms: u64,
}

/// Lower-median (element `(n-1)/2` of the sorted list): deterministic
/// for even counts, exact for odd.
fn median(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[(v.len() - 1) / 2]
}

/// Folds a `BENCH_sweeps.json` document into per-`(bin, label)` median
/// wall times, in `(bin, label)` order.
pub fn parse_sweeps(text: &str) -> Result<Vec<Entry>, String> {
    let doc = parse(text)?;
    let binaries = doc.get("binaries").ok_or("missing \"binaries\" object")?;
    let Json::Obj(bins) = binaries else {
        return Err("\"binaries\" is not an object".into());
    };
    let mut samples: BTreeMap<(String, String), Vec<u64>> = BTreeMap::new();
    for (bin, body) in bins {
        let Some(runs) = body.get("runs").and_then(Json::as_arr) else {
            continue;
        };
        for run in runs {
            let label = run
                .get("label")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{bin}: run without a label"))?;
            let wall = run
                .get("wall_ms")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{bin}: run {label:?} without wall_ms"))?;
            samples
                .entry((bin.clone(), label.to_string()))
                .or_default()
                .push(wall);
        }
    }
    Ok(samples
        .into_iter()
        .map(|((bin, label), walls)| Entry {
            bin,
            label,
            wall_ms: median(walls),
        })
        .collect())
}

/// Minimal JSON string escaping for bin names and labels.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a trajectory baseline as pretty-printed JSON (one entry per
/// line, `(bin, label)` order — diffs in review stay line-per-run).
pub fn render(entries: &[Entry]) -> String {
    let mut out = String::from("{\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"bin\":\"{}\",\"label\":\"{}\",\"wall_ms\":{}}}{comma}",
            esc(&e.bin),
            esc(&e.label),
            e.wall_ms,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Loads a committed `BENCH_trajectory.json` baseline.
pub fn parse_trajectory(text: &str) -> Result<Vec<Entry>, String> {
    let doc = parse(text)?;
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("missing \"entries\" array")?;
    entries
        .iter()
        .map(|e| {
            Ok(Entry {
                bin: e
                    .get("bin")
                    .and_then(Json::as_str)
                    .ok_or("entry without bin")?
                    .to_string(),
                label: e
                    .get("label")
                    .and_then(Json::as_str)
                    .ok_or("entry without label")?
                    .to_string(),
                wall_ms: e
                    .get("wall_ms")
                    .and_then(Json::as_u64)
                    .ok_or("entry without wall_ms")?,
            })
        })
        .collect()
}

/// The gate's verdict: the rendered report plus how many checks failed.
pub struct GateOutcome {
    /// Human-readable per-entry lines plus a trailing summary.
    pub report: String,
    /// Regressions plus missing labels; `0` means the gate passes.
    pub failures: usize,
}

/// Compares a fresh sweeps fold against the committed baseline.
///
/// Per baseline entry: fail when the current median exceeds
/// `baseline × tolerance`, and *hard*-fail when the label is missing
/// from the current sweeps (drift — a renamed or deleted run must be
/// re-recorded deliberately). New labels only present in the current
/// sweeps are reported but never fail: adding coverage is not a
/// regression.
pub fn gate(baseline: &[Entry], current: &[Entry], tolerance: f64) -> GateOutcome {
    let cur: BTreeMap<(&str, &str), u64> = current
        .iter()
        .map(|e| ((e.bin.as_str(), e.label.as_str()), e.wall_ms))
        .collect();
    let mut report = String::new();
    let mut failures = 0usize;
    for e in baseline {
        let key = (e.bin.as_str(), e.label.as_str());
        match cur.get(&key) {
            Some(&now) => {
                let base = e.wall_ms.max(1);
                let ratio = now as f64 / base as f64;
                let ok = now as f64 <= base as f64 * tolerance;
                if !ok {
                    failures += 1;
                }
                let _ = writeln!(
                    report,
                    "{} {}/{} {}ms -> {now}ms ({ratio:.2}x, tolerance {tolerance:.2}x)",
                    if ok { "ok  " } else { "FAIL" },
                    e.bin,
                    e.label,
                    e.wall_ms,
                );
            }
            None => {
                failures += 1;
                let _ = writeln!(
                    report,
                    "FAIL {}/{} {}ms -> missing from current sweeps (label drift)",
                    e.bin, e.label, e.wall_ms,
                );
            }
        }
    }
    let known: BTreeMap<(&str, &str), ()> = baseline
        .iter()
        .map(|e| ((e.bin.as_str(), e.label.as_str()), ()))
        .collect();
    let mut new = 0usize;
    for e in current {
        if !known.contains_key(&(e.bin.as_str(), e.label.as_str())) {
            new += 1;
        }
    }
    let _ = writeln!(
        report,
        "gate: {} checked, {failures} failed, {new} new label(s) not in baseline",
        baseline.len(),
    );
    GateOutcome { report, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweeps(wall_scale: u64) -> String {
        format!(
            concat!(
                "{{\"host_cores\":8,\"binaries\":{{",
                "\"faults\":{{\"jobs\":2,\"total_wall_ms\":{a},\"runs\":[",
                "{{\"label\":\"faults wc clean reg\",\"wall_ms\":{b}}},",
                "{{\"label\":\"faults wc clean itask\",\"wall_ms\":{c}}},",
                "{{\"label\":\"faults wc clean itask\",\"wall_ms\":{d}}}",
                "]}},",
                "\"smr\":{{\"jobs\":1,\"total_wall_ms\":{e},\"runs\":[",
                "{{\"label\":\"smr steady\",\"wall_ms\":{e}}}",
                "]}}}}}}"
            ),
            a = 150 * wall_scale,
            b = 50 * wall_scale,
            c = 40 * wall_scale,
            d = 60 * wall_scale,
            e = 100 * wall_scale,
        )
    }

    #[test]
    fn parse_sweeps_takes_label_medians() {
        let entries = parse_sweeps(&sweeps(1)).unwrap();
        assert_eq!(entries.len(), 3);
        // Repeated label folds to its (lower) median.
        let itask = entries
            .iter()
            .find(|e| e.label == "faults wc clean itask")
            .unwrap();
        assert_eq!(itask.wall_ms, 40);
        assert_eq!(entries[0].bin, "faults");
        assert_eq!(entries[2].bin, "smr");
    }

    #[test]
    fn trajectory_round_trips_through_render() {
        let entries = parse_sweeps(&sweeps(1)).unwrap();
        let doc = render(&entries);
        assert_eq!(parse_trajectory(&doc).unwrap(), entries);
        // Bytes are deterministic.
        assert_eq!(doc, render(&entries));
    }

    #[test]
    fn gate_passes_within_tolerance() {
        let base = parse_sweeps(&sweeps(1)).unwrap();
        let current = parse_sweeps(&sweeps(2)).unwrap();
        let g = gate(&base, &current, 5.0);
        assert_eq!(g.failures, 0, "{}", g.report);
        assert!(
            g.report.contains("ok   smr/smr steady 100ms -> 200ms"),
            "{}",
            g.report
        );
    }

    #[test]
    fn gate_fails_on_synthetic_regression() {
        let base = parse_sweeps(&sweeps(1)).unwrap();
        // A 100x slowdown must trip any sane tolerance.
        let current = parse_sweeps(&sweeps(100)).unwrap();
        let g = gate(&base, &current, 5.0);
        assert_eq!(g.failures, 3, "{}", g.report);
        assert!(
            g.report.contains("FAIL faults/faults wc clean reg"),
            "{}",
            g.report
        );
        assert!(
            g.report.contains("(100.00x, tolerance 5.00x)"),
            "{}",
            g.report
        );
    }

    #[test]
    fn gate_hard_fails_on_label_drift() {
        let base = parse_sweeps(&sweeps(1)).unwrap();
        let mut current = parse_sweeps(&sweeps(1)).unwrap();
        current.retain(|e| e.bin != "smr");
        let g = gate(&base, &current, 5.0);
        assert_eq!(g.failures, 1, "{}", g.report);
        assert!(
            g.report
                .contains("missing from current sweeps (label drift)"),
            "{}",
            g.report
        );
    }

    #[test]
    fn new_labels_never_fail_the_gate() {
        let base: Vec<Entry> = Vec::new();
        let current = parse_sweeps(&sweeps(1)).unwrap();
        let g = gate(&base, &current, 5.0);
        assert_eq!(g.failures, 0);
        assert!(
            g.report.contains("3 new label(s) not in baseline"),
            "{}",
            g.report
        );
    }
}
