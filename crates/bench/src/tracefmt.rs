//! Trace-file parsing and analysis for `tracectl`.
//!
//! Consumes the compact JSONL twin written next to every `--trace`
//! Chrome dump (one run-header line per run, one line per event) and
//! computes the derived reports the paper reads off its timelines: GC
//! time share per node, the signal → victim → interrupt → re-activation
//! latency chain (via the deterministic [`QuantileSketch`]), per-tenant
//! queue/run breakdowns, and an A/B diff between two traces.
//!
//! The crate has no serde; a small hand-rolled recursive-descent JSON
//! parser covers both the JSONL lines and (for schema checks) the
//! Chrome JSON file. Every numeric value a trace contains is well below
//! 2^53, so `f64` round-trips them exactly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use simserve::sketch::{fmt_ms, QuantileSketch};

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (trace values are < 2^53, so f64 is exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as u64, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as i64, if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let s = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number {s:?}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => {
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            b'\\' => {
                let esc = *bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
                        *pos += 4;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        // Traces only escape control chars; surrogate
                        // pairs never appear. Reject rather than mangle.
                        let c = char::from_u32(cp).ok_or("surrogate in \\u escape")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            other => out.push(other),
        }
    }
    Err("unterminated string".into())
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // {
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // [
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

/// One event from a JSONL trace line.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Per-run unique event id (`stream << 32 | seq`; stream 0 = driver,
    /// stream n+1 = node n).
    pub id: u64,
    /// Event kind (the stable `TraceData::kind()` names).
    pub kind: String,
    /// Node id, `-1` for cluster-wide events.
    pub node: i64,
    /// Allocation scope / service job id, if any.
    pub scope: Option<u64>,
    /// Virtual start time, nanoseconds.
    pub ts: u64,
    /// Virtual duration, nanoseconds (0 = instantaneous).
    pub dur: u64,
    /// The typed payload fields, as parsed JSON.
    pub payload: Json,
}

impl TraceEvent {
    /// A u64 payload field (0 when absent — trace payloads are total).
    pub fn num(&self, key: &str) -> u64 {
        self.payload.get(key).and_then(Json::as_u64).unwrap_or(0)
    }

    /// A bool payload field (false when absent).
    pub fn flag(&self, key: &str) -> bool {
        self.payload
            .get(key)
            .and_then(Json::as_bool)
            .unwrap_or(false)
    }

    /// The causal link (0 = none).
    pub fn cause(&self) -> u64 {
        self.num("cause")
    }
}

/// One run's worth of a trace file.
#[derive(Clone, Debug)]
pub struct TraceRun {
    /// The sweep label of the run.
    pub label: String,
    /// Events in merged `(time, node, seq)` order.
    pub events: Vec<TraceEvent>,
}

/// Loads a JSONL trace (the `<path>.jsonl` twin of a Chrome dump).
pub fn load_jsonl(text: &str) -> Result<Vec<TraceRun>, String> {
    let mut runs: Vec<TraceRun> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let run = v
            .get("run")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("line {}: missing run index", lineno + 1))?
            as usize;
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing kind", lineno + 1))?
            .to_string();
        if kind == "run" {
            if run != runs.len() {
                return Err(format!(
                    "line {}: run header {run} out of order (have {})",
                    lineno + 1,
                    runs.len()
                ));
            }
            runs.push(TraceRun {
                label: v
                    .get("label")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
                events: Vec::new(),
            });
            continue;
        }
        let target = runs
            .get_mut(run)
            .ok_or_else(|| format!("line {}: event before its run header", lineno + 1))?;
        target.events.push(TraceEvent {
            id: v
                .get("id")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("line {}: missing id", lineno + 1))?,
            kind,
            node: v.get("node").and_then(Json::as_i64).unwrap_or(-1),
            scope: v.get("scope").and_then(Json::as_u64),
            ts: v
                .get("ts")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("line {}: missing ts", lineno + 1))?,
            dur: v.get("dur").and_then(Json::as_u64).unwrap_or(0),
            payload: v,
        });
    }
    Ok(runs)
}

fn sketch_line(s: &QuantileSketch) -> String {
    s.snapshot().mid_line()
}

/// Like [`sketch_line`] but with the tail quantiles an SLO lens needs:
/// commit latencies are judged at p99/p99.9, not p90.
fn tail_line(s: &QuantileSketch) -> String {
    s.snapshot().tail_line()
}

/// Aggregates a run computes once and both `report` and `diff` read.
#[derive(Default)]
struct RunSummary {
    counts: BTreeMap<String, u64>,
    /// Per node: (GC time, minor count, full count, useless count,
    /// last event timestamp).
    gc: BTreeMap<i64, (u64, u64, u64, u64, u64)>,
    victim_latency: Option<QuantileSketch>,
    interrupt_latency: Option<QuantileSketch>,
    reactivate_latency: Option<QuantileSketch>,
    /// Per tenant: submitted, admitted, completed, failed, oom,
    /// wait sketch, latency sketch.
    tenants: BTreeMap<u64, TenantSummary>,
    /// Shed jobs by reason label.
    sheds: BTreeMap<String, u64>,
    /// Circuit-breaker transitions by state label.
    breaker: BTreeMap<String, u64>,
    /// Brownout windows: count, total rounds, total virtual time.
    brownout_windows: u64,
    brownout_rounds: u64,
    brownout_ns: u64,
    /// SMR propose→commit latencies (`latency_ns` on `commit` events).
    commit_latency: Option<QuantileSketch>,
    /// SMR view changes observed.
    view_changes: u64,
}

#[derive(Default)]
struct TenantSummary {
    submitted: u64,
    admitted: u64,
    completed: u64,
    failed: u64,
    oom: u64,
    wait: Option<QuantileSketch>,
    latency: Option<QuantileSketch>,
}

fn sk() -> QuantileSketch {
    QuantileSketch::new(QuantileSketch::DEFAULT_K)
}

fn summarize(run: &TraceRun) -> RunSummary {
    let mut s = RunSummary::default();
    // id → ts for causal latency lookups.
    let ts_of: BTreeMap<u64, u64> = run.events.iter().map(|e| (e.id, e.ts)).collect();
    let lat = |slot: &mut Option<QuantileSketch>, e: &TraceEvent| {
        let cause = e.cause();
        if cause != 0 {
            if let Some(&start) = ts_of.get(&cause) {
                slot.get_or_insert_with(sk)
                    .insert(e.ts.saturating_sub(start));
            }
        }
    };
    for e in &run.events {
        *s.counts.entry(e.kind.clone()).or_insert(0) += 1;
        let g = s.gc.entry(e.node).or_default();
        g.4 = g.4.max(e.ts + e.dur);
        match e.kind.as_str() {
            "gc" => {
                g.0 += e.dur;
                if e.flag("full") {
                    g.2 += 1;
                } else {
                    g.1 += 1;
                }
                if e.flag("useless") {
                    g.3 += 1;
                }
            }
            "victim" => lat(&mut s.victim_latency, e),
            "interrupt" => lat(&mut s.interrupt_latency, e),
            "activate" => lat(&mut s.reactivate_latency, e),
            "submit" => {
                s.tenants.entry(e.num("tenant")).or_default().submitted += 1;
            }
            "admit" => {
                let t = s.tenants.entry(e.num("tenant")).or_default();
                t.admitted += 1;
                t.wait.get_or_insert_with(sk).insert(e.num("wait_ns"));
            }
            "complete" => {
                let t = s.tenants.entry(e.num("tenant")).or_default();
                t.completed += 1;
                t.latency.get_or_insert_with(sk).insert(e.num("latency_ns"));
            }
            "fail" => {
                let t = s.tenants.entry(e.num("tenant")).or_default();
                t.failed += 1;
                if e.flag("oom") {
                    t.oom += 1;
                }
            }
            "shed" => {
                let reason = e
                    .payload
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string();
                *s.sheds.entry(reason).or_insert(0) += 1;
            }
            "breaker" => {
                let state = e
                    .payload
                    .get("state")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string();
                *s.breaker.entry(state).or_insert(0) += 1;
            }
            "brownout" => {
                s.brownout_windows += 1;
                s.brownout_rounds += e.num("rounds");
                s.brownout_ns += e.dur;
            }
            "commit" => {
                s.commit_latency
                    .get_or_insert_with(sk)
                    .insert(e.num("latency_ns"));
            }
            "view_change" => s.view_changes += 1,
            _ => {}
        }
    }
    s
}

fn node_name(node: i64) -> String {
    if node < 0 {
        "cluster".to_string()
    } else {
        format!("node{node}")
    }
}

/// Renders the Figure-3-style sequencing: every complete
/// signal → victim-mark → interrupt → re-activation chain in the run,
/// as one arrow line each (capped at `max_chains`, earliest first).
fn render_chains(run: &TraceRun, out: &mut String, max_chains: usize) {
    let by_id: BTreeMap<u64, &TraceEvent> = run.events.iter().map(|e| (e.id, e)).collect();
    let mut chains = 0usize;
    let mut truncated = 0usize;
    for e in &run.events {
        if e.kind != "activate" || e.cause() == 0 {
            continue;
        }
        let Some(interrupt) = by_id.get(&e.cause()) else {
            continue;
        };
        let mark = by_id.get(&interrupt.cause());
        let signal = mark.and_then(|m| by_id.get(&m.cause()));
        if chains >= max_chains {
            truncated += 1;
            continue;
        }
        chains += 1;
        let mut line = String::new();
        if let (Some(sig), Some(m)) = (signal, mark) {
            let _ = write!(
                line,
                "signal@{} -> mark@{} -> ",
                fmt_ms(sig.ts),
                fmt_ms(m.ts)
            );
        } else if interrupt.flag("emergency") {
            let _ = write!(line, "allocation failure -> ");
        }
        let _ = writeln!(
            out,
            "    {line}interrupt@{} ({}, task{}) -> reactivate@{} ({}, {} partition{})",
            fmt_ms(interrupt.ts),
            node_name(interrupt.node),
            interrupt.num("task"),
            fmt_ms(e.ts),
            node_name(e.node),
            e.num("partitions"),
            if e.num("partitions") == 1 { "" } else { "s" },
        );
    }
    if chains == 0 {
        let _ = writeln!(out, "    (no interrupt -> re-activation chains)");
    } else if truncated > 0 {
        let _ = writeln!(out, "    ... and {truncated} more chains");
    }
}

/// Renders the full `tracectl report` for a loaded trace.
pub fn report(runs: &[TraceRun]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "trace: {} run(s)", runs.len());
    // Commit latencies merged across every SMR run in the trace (one
    // sketch per run, folded with the deterministic sketch merge).
    let mut all_commits: Option<QuantileSketch> = None;
    let mut smr_runs = 0usize;
    let mut all_view_changes = 0u64;
    for (i, run) in runs.iter().enumerate() {
        let s = summarize(run);
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "== run {i}: {} ({} events)",
            run.label,
            run.events.len()
        );
        let counts: Vec<String> = s.counts.iter().map(|(k, n)| format!("{k}={n}")).collect();
        let _ = writeln!(out, "  events: {}", counts.join(" "));
        let gc_nodes: Vec<&i64> =
            s.gc.iter()
                .filter(|(n, g)| **n >= 0 && (g.1 + g.2 > 0 || g.0 > 0))
                .map(|(n, _)| n)
                .collect();
        if !gc_nodes.is_empty() {
            let _ = writeln!(out, "  gc time share per node:");
            for n in gc_nodes {
                let (gc_ns, minor, full, useless, end) = s.gc[n];
                // Comparison ("ctime") sub-runs restart a node's clock,
                // so summed pause time can exceed the final timestamp;
                // a percentage would be meaningless there.
                let share = if end > 0 && gc_ns <= end {
                    format!(
                        "({:5.1}% of {})",
                        100.0 * gc_ns as f64 / end as f64,
                        fmt_ms(end)
                    )
                } else {
                    "(restarted timeline)".to_string()
                };
                let _ = writeln!(
                    out,
                    "    {:<8} {:>10} {share} minor={minor} full={full} useless={useless}",
                    node_name(*n),
                    fmt_ms(gc_ns),
                );
            }
        }
        let _ = writeln!(out, "  interrupt chain latencies:");
        let _ = writeln!(
            out,
            "    signal->mark        {}",
            sketch_line(s.victim_latency.as_ref().unwrap_or(&sk()))
        );
        let _ = writeln!(
            out,
            "    mark->interrupt     {}",
            sketch_line(s.interrupt_latency.as_ref().unwrap_or(&sk()))
        );
        let _ = writeln!(
            out,
            "    interrupt->activate {}",
            sketch_line(s.reactivate_latency.as_ref().unwrap_or(&sk()))
        );
        let _ = writeln!(out, "  interrupt/re-activation sequencing:");
        render_chains(run, &mut out, 8);
        if !s.tenants.is_empty() {
            let _ = writeln!(out, "  tenants:");
            // Scale traces carry 10^5+ tenants: cap the rollup at the
            // first 16 ids so the summary stays a summary. Pre-existing
            // traces (<= a handful of tenants) render unchanged.
            const MAX_TENANT_ROWS: usize = 16;
            for (t, ts) in s.tenants.iter().take(MAX_TENANT_ROWS) {
                let _ = writeln!(
                    out,
                    "    t{t}: submitted={} admitted={} completed={} failed={} oom={} wait[{}] latency[{}]",
                    ts.submitted,
                    ts.admitted,
                    ts.completed,
                    ts.failed,
                    ts.oom,
                    sketch_line(ts.wait.as_ref().unwrap_or(&sk())),
                    sketch_line(ts.latency.as_ref().unwrap_or(&sk())),
                );
            }
            if s.tenants.len() > MAX_TENANT_ROWS {
                let _ = writeln!(
                    out,
                    "    ... and {} more tenants",
                    s.tenants.len() - MAX_TENANT_ROWS
                );
            }
        }
        // Only runs that actually armed the overload controls emit
        // these kinds, so pre-existing traces render unchanged.
        if !s.sheds.is_empty() || !s.breaker.is_empty() || s.brownout_windows > 0 {
            let _ = writeln!(out, "  overload:");
            if !s.sheds.is_empty() {
                let parts: Vec<String> = s.sheds.iter().map(|(k, n)| format!("{k}={n}")).collect();
                let _ = writeln!(out, "    sheds: {}", parts.join(" "));
            }
            if !s.breaker.is_empty() {
                let parts: Vec<String> =
                    s.breaker.iter().map(|(k, n)| format!("{k}={n}")).collect();
                let _ = writeln!(out, "    breaker: {}", parts.join(" "));
            }
            if s.brownout_windows > 0 {
                let _ = writeln!(
                    out,
                    "    brownout: windows={} rounds={} time={}",
                    s.brownout_windows,
                    s.brownout_rounds,
                    fmt_ms(s.brownout_ns)
                );
            }
        }
        // Only SMR runs emit commit/view_change kinds, so pre-existing
        // traces render unchanged.
        if s.commit_latency.is_some() || s.view_changes > 0 {
            let _ = writeln!(out, "  smr:");
            let _ = writeln!(
                out,
                "    commit latency (propose->commit): {}",
                tail_line(s.commit_latency.as_ref().unwrap_or(&sk()))
            );
            let _ = writeln!(out, "    view changes: {}", s.view_changes);
            smr_runs += 1;
            all_view_changes += s.view_changes;
            if let Some(c) = &s.commit_latency {
                all_commits.get_or_insert_with(sk).merge(c);
            }
        }
    }
    if smr_runs > 1 {
        if let Some(all) = &all_commits {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "smr commit latency across {smr_runs} runs: {}",
                tail_line(all)
            );
            let _ = writeln!(
                out,
                "smr view changes across {smr_runs} runs: {all_view_changes}"
            );
        }
    }
    out
}

/// Renders one matched run pair of the diff: kind counts, total GC time
/// and chain medians, side by side with deltas.
fn diff_pair(out: &mut String, ra: &TraceRun, rb: &TraceRun) {
    let sa = summarize(ra);
    let sb = summarize(rb);
    let mut kinds: Vec<&String> = sa.counts.keys().chain(sb.counts.keys()).collect();
    kinds.sort();
    kinds.dedup();
    for k in kinds {
        let ca = sa.counts.get(k).copied().unwrap_or(0);
        let cb = sb.counts.get(k).copied().unwrap_or(0);
        if ca == cb {
            let _ = writeln!(out, "  {k:<10} {ca:>8}  (unchanged)");
        } else {
            let _ = writeln!(
                out,
                "  {k:<10} {ca:>8} -> {cb:<8} ({:+})",
                cb as i64 - ca as i64
            );
        }
    }
    let gc_a: u64 = sa.gc.values().map(|g| g.0).sum();
    let gc_b: u64 = sb.gc.values().map(|g| g.0).sum();
    let _ = writeln!(
        out,
        "  total gc   {} -> {} ({:+.3}ms)",
        fmt_ms(gc_a),
        fmt_ms(gc_b),
        (gc_b as f64 - gc_a as f64) / 1e6
    );
    for (name, qa, qb) in [
        (
            "mark->interrupt",
            &sa.interrupt_latency,
            &sb.interrupt_latency,
        ),
        (
            "interrupt->activate",
            &sa.reactivate_latency,
            &sb.reactivate_latency,
        ),
    ] {
        let p50 = |s: &Option<QuantileSketch>| {
            s.as_ref()
                .filter(|s| !s.is_empty())
                .map(|s| s.quantile(0.5))
        };
        match (p50(qa), p50(qb)) {
            (Some(ma), Some(mb)) => {
                let _ = writeln!(
                    out,
                    "  p50 {name:<19} {} -> {} ({:+.3}ms)",
                    fmt_ms(ma),
                    fmt_ms(mb),
                    (mb as f64 - ma as f64) / 1e6
                );
            }
            (None, None) => {}
            (ma, mb) => {
                let show = |m: Option<u64>| m.map_or("absent".to_string(), fmt_ms);
                let _ = writeln!(out, "  p50 {name:<19} {} -> {}", show(ma), show(mb));
            }
        }
    }
}

/// Renders the two-trace A/B diff. Runs are matched by *label* (first
/// unmatched B run with the same label, in A order), not by position:
/// sweeps that added, removed, or reordered configurations still diff
/// the comparable runs against each other. When the two traces' label
/// sequences differ a warning line says so; when they are identical the
/// output is exactly the old positional diff.
pub fn diff(a: &[TraceRun], b: &[TraceRun]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "diff: A has {} run(s), B has {} run(s)",
        a.len(),
        b.len()
    );
    let labels_match = a.len() == b.len() && a.iter().zip(b).all(|(ra, rb)| ra.label == rb.label);
    if !labels_match {
        let _ = writeln!(
            out,
            "warning: run labels differ between traces; matching runs by label, not position"
        );
    }
    let mut used_b = vec![false; b.len()];
    for (i, ra) in a.iter().enumerate() {
        let matched = b
            .iter()
            .enumerate()
            .position(|(j, rb)| !used_b[j] && rb.label == ra.label);
        let _ = writeln!(out);
        match matched {
            Some(j) => {
                used_b[j] = true;
                if j == i {
                    let _ = writeln!(out, "== run {i}: A={} | B={}", ra.label, b[j].label);
                } else {
                    let _ = writeln!(
                        out,
                        "== run {i}: A={} | B={} (B run {j})",
                        ra.label, b[j].label
                    );
                }
                diff_pair(&mut out, ra, &b[j]);
            }
            None => {
                let _ = writeln!(out, "== run {i}: only in A ({})", ra.label);
            }
        }
    }
    for (j, rb) in b.iter().enumerate() {
        if !used_b[j] {
            let _ = writeln!(out);
            let _ = writeln!(out, "== run {j}: only in B ({})", rb.label);
        }
    }
    out
}

/// Minimal JSON string escaping for labels and kind names.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a loaded trace as a Perfetto-compatible Chrome trace-event
/// document with *causal async spans*.
///
/// Besides the regular instant/duration rows, every causal link
/// `cause → event` becomes a nestable async span — `ph:"b"` at the
/// cause's timestamp, `ph:"e"` at the dependent event's end — in
/// category `"causal"`, so Perfetto draws interrupt chains, breaker
/// trips, and retry cascades as spans with extent instead of
/// disconnected instants. Span ids are the dependent event's
/// stream-namespaced id (unique within a run, so every link pairs its
/// own begin/end), and the span name is `"{cause.kind}->{event.kind}"`.
///
/// Output is deterministic: events are walked in the trace's canonical
/// merged order and timestamps are virtual nanoseconds, so the bytes
/// are identical across hosts, `--jobs`, and `--shards`.
pub fn perfetto(runs: &[TraceRun]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };
    for (pid, run) in runs.iter().enumerate() {
        push(
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
                esc(&run.label)
            ),
            &mut out,
        );
        let mut nodes: Vec<i64> = run.events.iter().map(|e| e.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        for n in nodes {
            let name = if n < 0 {
                "cluster".to_string()
            } else {
                format!("node{n}")
            };
            push(
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{n},\"args\":{{\"name\":\"{name}\"}}}}"
                ),
                &mut out,
            );
        }
        let by_id: BTreeMap<u64, &TraceEvent> = run.events.iter().map(|e| (e.id, e)).collect();
        for e in &run.events {
            let row = if e.dur == 0 {
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"args\":{{\"id\":{}}}}}",
                    esc(&e.kind),
                    e.node,
                    e.ts,
                    e.id,
                )
            } else {
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"id\":{}}}}}",
                    esc(&e.kind),
                    e.node,
                    e.ts,
                    e.dur,
                    e.id,
                )
            };
            push(row, &mut out);
            let cause = e.cause();
            if cause == 0 {
                continue;
            }
            let Some(c) = by_id.get(&cause) else {
                continue;
            };
            let name = esc(&format!("{}->{}", c.kind, e.kind));
            push(
                format!(
                    "{{\"name\":\"{name}\",\"cat\":\"causal\",\"ph\":\"b\",\"id\":\"0x{:x}\",\"pid\":{pid},\"tid\":{},\"ts\":{}}}",
                    e.id, c.node, c.ts,
                ),
                &mut out,
            );
            push(
                format!(
                    "{{\"name\":\"{name}\",\"cat\":\"causal\",\"ph\":\"e\",\"id\":\"0x{:x}\",\"pid\":{pid},\"tid\":{},\"ts\":{}}}",
                    e.id,
                    e.node,
                    e.ts + e.dur,
                ),
                &mut out,
            );
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_values() {
        let v = parse(r#"{"a":1,"b":-2.5,"c":"x\"y\n","d":[true,false,null],"e":{}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b"), Some(&Json::Num(-2.5)));
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\"y\n"));
        assert_eq!(v.get("d").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("e"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parser_handles_unicode_escapes() {
        let v = parse(r#""a	b""#).unwrap();
        assert_eq!(v.as_str(), Some("a\tb"));
    }

    fn sample_jsonl() -> String {
        concat!(
            "{\"run\":0,\"kind\":\"run\",\"label\":\"wc t4\",\"events\":5}\n",
            "{\"run\":0,\"id\":1,\"kind\":\"signal\",\"node\":0,\"scope\":null,\"ts\":100,\"dur\":0,\"reduce\":true}\n",
            "{\"run\":0,\"id\":2,\"kind\":\"victim\",\"node\":0,\"scope\":null,\"ts\":150,\"dur\":0,\"task\":1,\"cause\":1}\n",
            "{\"run\":0,\"id\":3,\"kind\":\"interrupt\",\"node\":0,\"scope\":null,\"ts\":400,\"dur\":0,\"task\":1,\"emergency\":false,\"cause\":2}\n",
            "{\"run\":0,\"id\":4,\"kind\":\"gc\",\"node\":0,\"scope\":null,\"ts\":500,\"dur\":250,\"full\":true,\"reclaimed\":10,\"free_after\":90,\"useless\":false}\n",
            "{\"run\":0,\"id\":5,\"kind\":\"activate\",\"node\":1,\"scope\":null,\"ts\":900,\"dur\":0,\"task\":1,\"partitions\":2,\"cause\":3}\n",
        )
        .to_string()
    }

    #[test]
    fn loader_parses_runs_and_events() {
        let runs = load_jsonl(&sample_jsonl()).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].label, "wc t4");
        assert_eq!(runs[0].events.len(), 5);
        assert_eq!(runs[0].events[3].dur, 250);
        assert_eq!(runs[0].events[4].cause(), 3);
    }

    #[test]
    fn loader_rejects_orphan_events() {
        let text = "{\"run\":0,\"id\":1,\"kind\":\"gc\",\"ts\":1,\"dur\":1}\n";
        assert!(load_jsonl(text).is_err());
    }

    #[test]
    fn perfetto_emits_balanced_causal_spans() {
        let runs = load_jsonl(&sample_jsonl()).unwrap();
        let doc = perfetto(&runs);
        // The document itself parses as JSON.
        let v = parse(&doc).expect("perfetto output parses");
        let events = v.get("traceEvents").and_then(Json::as_arr).unwrap();
        let phase = |ph: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
                .count()
        };
        // sample_jsonl has 3 causal links (victim->1, interrupt->2,
        // activate->3): each becomes exactly one begin/end pair.
        assert_eq!(phase("b"), 3);
        assert_eq!(phase("e"), 3);
        // Regular rows survive: 4 instants + 1 duration span.
        assert_eq!(phase("i"), 4);
        assert_eq!(phase("X"), 1);
        assert!(doc.contains("\"name\":\"interrupt->activate\""));
        assert!(doc.contains("\"cat\":\"causal\""));
        // Same input, same bytes.
        assert_eq!(doc, perfetto(&runs));
    }

    #[test]
    fn report_shows_chains_gc_and_latencies() {
        let runs = load_jsonl(&sample_jsonl()).unwrap();
        let r = report(&runs);
        assert!(r.contains("signal@0.000ms -> mark@0.000ms"), "{r}");
        assert!(r.contains("interrupt@0.000ms (node0, task1)"), "{r}");
        assert!(
            r.contains("reactivate@0.001ms (node1, 2 partitions)"),
            "{r}"
        );
        assert!(r.contains("full=1"), "{r}");
        assert!(r.contains("mark->interrupt     n=1"), "{r}");
    }

    #[test]
    fn diff_reports_count_deltas() {
        let a = load_jsonl(&sample_jsonl()).unwrap();
        let mut b = a.clone();
        b[0].events.pop(); // drop the re-activation
        let d = diff(&a, &b);
        assert!(d.contains("activate          1 -> 0        (-1)"), "{d}");
        assert!(d.contains("gc                1  (unchanged)"), "{d}");
    }

    #[test]
    fn diff_matches_runs_by_label_not_position() {
        let base = load_jsonl(&sample_jsonl()).unwrap();
        let mut ra = base[0].clone();
        ra.label = "alpha".to_string();
        let mut rb = base[0].clone();
        rb.label = "beta".to_string();
        rb.events.pop(); // make beta distinguishable in counts
                         // A lists [alpha, beta]; B lists them reversed, plus a run only B has.
        let mut rc = base[0].clone();
        rc.label = "gamma".to_string();
        let a = vec![ra.clone(), rb.clone()];
        let b = vec![rb, ra, rc];
        let d = diff(&a, &b);
        assert!(
            d.contains("warning: run labels differ between traces"),
            "{d}"
        );
        // alpha matched against alpha (B run 1), so every kind is unchanged.
        assert!(d.contains("== run 0: A=alpha | B=alpha (B run 1)"), "{d}");
        assert!(d.contains("activate          1  (unchanged)"), "{d}");
        assert!(d.contains("== run 1: A=beta | B=beta (B run 0)"), "{d}");
        assert!(d.contains("== run 2: only in B (gamma)"), "{d}");
    }

    #[test]
    fn diff_with_aligned_labels_has_no_warning() {
        let a = load_jsonl(&sample_jsonl()).unwrap();
        let d = diff(&a, &a);
        assert!(!d.contains("warning:"), "{d}");
        assert!(d.contains("== run 0: A=wc t4 | B=wc t4\n"), "{d}");
    }

    #[test]
    fn report_rolls_up_overload_events() {
        let text = concat!(
            "{\"run\":0,\"kind\":\"run\",\"label\":\"ctl\",\"events\":4}\n",
            "{\"run\":0,\"id\":1,\"kind\":\"shed\",\"node\":-1,\"scope\":null,\"ts\":1,\"dur\":0,\"tenant\":0,\"reason\":\"deadline\"}\n",
            "{\"run\":0,\"id\":2,\"kind\":\"shed\",\"node\":-1,\"scope\":null,\"ts\":2,\"dur\":0,\"tenant\":1,\"reason\":\"deadline\"}\n",
            "{\"run\":0,\"id\":3,\"kind\":\"breaker\",\"node\":0,\"scope\":null,\"ts\":3,\"dur\":0,\"state\":\"open\",\"cause\":0}\n",
            "{\"run\":0,\"id\":4,\"kind\":\"brownout\",\"node\":-1,\"scope\":null,\"ts\":4,\"dur\":2000000,\"rounds\":3,\"cause\":0}\n",
        );
        let runs = load_jsonl(text).unwrap();
        let r = report(&runs);
        assert!(r.contains("overload:"), "{r}");
        assert!(r.contains("sheds: deadline=2"), "{r}");
        assert!(r.contains("breaker: open=1"), "{r}");
        assert!(
            r.contains("brownout: windows=1 rounds=3 time=2.000ms"),
            "{r}"
        );
    }

    #[test]
    fn report_without_overload_events_omits_section() {
        let runs = load_jsonl(&sample_jsonl()).unwrap();
        let r = report(&runs);
        assert!(!r.contains("overload:"), "{r}");
    }

    fn smr_run_jsonl(run: usize, lat_a: u64, lat_b: u64) -> String {
        format!(
            concat!(
                "{{\"run\":{r},\"kind\":\"run\",\"label\":\"smr{r}\",\"events\":5}}\n",
                "{{\"run\":{r},\"id\":1,\"kind\":\"propose\",\"node\":0,\"scope\":null,\"ts\":0,\"dur\":0,\"index\":1,\"view\":0}}\n",
                "{{\"run\":{r},\"id\":2,\"kind\":\"replicate\",\"node\":0,\"scope\":null,\"ts\":0,\"dur\":100,\"index\":1,\"to\":1,\"cause\":1}}\n",
                "{{\"run\":{r},\"id\":3,\"kind\":\"commit\",\"node\":0,\"scope\":null,\"ts\":{a},\"dur\":0,\"index\":1,\"latency_ns\":{a},\"cause\":1}}\n",
                "{{\"run\":{r},\"id\":4,\"kind\":\"commit\",\"node\":0,\"scope\":null,\"ts\":{b},\"dur\":0,\"index\":2,\"latency_ns\":{b},\"cause\":1}}\n",
                "{{\"run\":{r},\"id\":5,\"kind\":\"view_change\",\"node\":1,\"scope\":null,\"ts\":{b},\"dur\":50,\"view\":1,\"leader\":1,\"cause\":0}}\n",
            ),
            r = run,
            a = lat_a,
            b = lat_b,
        )
    }

    #[test]
    fn report_rolls_up_smr_commit_tail() {
        let runs = load_jsonl(&smr_run_jsonl(0, 2_000_000, 40_000_000)).unwrap();
        let r = report(&runs);
        assert!(r.contains("smr:"), "{r}");
        assert!(r.contains("commit latency (propose->commit): n=2"), "{r}");
        assert!(r.contains("p99.9=40.000ms"), "{r}");
        assert!(r.contains("view changes: 1"), "{r}");
        // A single SMR run gets no cross-run aggregate line.
        assert!(!r.contains("across"), "{r}");
    }

    #[test]
    fn report_merges_smr_sketches_across_runs() {
        let text = format!(
            "{}{}",
            smr_run_jsonl(0, 2_000_000, 3_000_000),
            smr_run_jsonl(1, 4_000_000, 50_000_000)
        );
        let runs = load_jsonl(&text).unwrap();
        let r = report(&runs);
        assert!(r.contains("smr commit latency across 2 runs: n=4"), "{r}");
        assert!(r.contains("max=50.000ms"), "{r}");
        assert!(r.contains("smr view changes across 2 runs: 2"), "{r}");
    }

    #[test]
    fn report_without_smr_events_omits_section() {
        let runs = load_jsonl(&sample_jsonl()).unwrap();
        let r = report(&runs);
        assert!(!r.contains("smr:"), "{r}");
    }

    #[test]
    fn tenant_rollup_counts_lifecycle() {
        let text = concat!(
            "{\"run\":0,\"kind\":\"run\",\"label\":\"svc\",\"events\":3}\n",
            "{\"run\":0,\"id\":1,\"kind\":\"submit\",\"node\":-1,\"scope\":null,\"ts\":1,\"dur\":0,\"tenant\":2}\n",
            "{\"run\":0,\"id\":2,\"kind\":\"admit\",\"node\":-1,\"scope\":1,\"ts\":5,\"dur\":0,\"tenant\":2,\"wait_ns\":4}\n",
            "{\"run\":0,\"id\":3,\"kind\":\"complete\",\"node\":-1,\"scope\":1,\"ts\":9,\"dur\":0,\"tenant\":2,\"latency_ns\":8}\n",
        );
        let runs = load_jsonl(text).unwrap();
        let r = report(&runs);
        assert!(
            r.contains("t2: submitted=1 admitted=1 completed=1 failed=0 oom=0"),
            "{r}"
        );
    }
}
