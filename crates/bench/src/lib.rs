//! Shared harness utilities for the table/figure binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! DESIGN.md §4) and prints it as an aligned text table: raw virtual
//! seconds, the ×1024 "paper-equivalent" seconds, GC fractions, peak
//! heaps and OME markers.

pub mod metricsfmt;
pub mod sweep;
pub mod tracefmt;
pub mod trajectory;

use simcore::{ByteSize, SimDuration, SCALE};

/// One measured cell of a table/figure.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Completed?
    pub ok: bool,
    /// End-to-end virtual time.
    pub elapsed: SimDuration,
    /// GC time on the critical path.
    pub gc: SimDuration,
    /// Peak per-node heap.
    pub peak: ByteSize,
}

impl Cell {
    /// Builds a cell from a run summary.
    pub fn from_summary<T>(s: &apps::RunSummary<T>) -> Self {
        Cell {
            ok: s.ok(),
            elapsed: s.report.elapsed,
            gc: s.report.critical_path_gc(),
            peak: s.peak_heap(),
        }
    }

    /// Paper-equivalent seconds (virtual × SCALE).
    pub fn paper_secs(&self) -> f64 {
        self.elapsed.as_secs_f64() * SCALE as f64
    }

    /// GC share of elapsed time.
    pub fn gc_frac(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.gc.as_secs_f64() / self.elapsed.as_secs_f64()
        }
    }

    /// `"123.4s (gc 45%)"` or `"OME@67.8s"`.
    pub fn show(&self) -> String {
        if self.ok {
            format!(
                "{:7.1}s (gc {:2.0}%)",
                self.paper_secs(),
                self.gc_frac() * 100.0
            )
        } else {
            format!("OME@{:.1}s", self.paper_secs())
        }
    }
}

/// Prints an aligned table: a header row then data rows.
pub fn print_table(title: &str, header: &[String], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(header));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Column helper.
pub fn cols(items: &[&str]) -> Vec<String> {
    items.iter().map(|s| s.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_formats_success_and_failure() {
        let ok = Cell {
            ok: true,
            elapsed: SimDuration::from_millis(100),
            gc: SimDuration::from_millis(50),
            peak: ByteSize::mib(1),
        };
        assert!(ok.show().contains("gc 50%"));
        assert!((ok.paper_secs() - 102.4).abs() < 1e-6);
        let bad = Cell { ok: false, ..ok };
        assert!(bad.show().starts_with("OME@"));
    }
}

/// Writes rows as CSV (for plotting); the first row is the header.
///
/// Values are written verbatim; callers supply already-formatted
/// numbers. Fields containing commas or quotes are quoted.
pub fn write_csv(path: &str, header: &[String], rows: &[Vec<String>]) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::File::create(path)?;
    let escape = |s: &str| {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let mut line = |cells: &[String]| -> std::io::Result<()> {
        let joined: Vec<String> = cells.iter().map(|c| escape(c)).collect();
        writeln!(f, "{}", joined.join(","))
    };
    line(header)?;
    for row in rows {
        line(row)?;
    }
    Ok(())
}

/// Machine-readable form of a [`Cell`]: `status,paper_secs,gc_frac,peak_bytes`.
pub fn cell_csv(cell: &Cell) -> Vec<String> {
    vec![
        if cell.ok { "ok".into() } else { "oom".into() },
        format!("{:.3}", cell.paper_secs()),
        format!("{:.4}", cell.gc_frac()),
        cell.peak.as_u64().to_string(),
    ]
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    #[test]
    fn csv_roundtrip_and_escaping() {
        let path = std::env::temp_dir().join("itask_bench_csv_test.csv");
        let path = path.to_str().unwrap();
        write_csv(
            path,
            &cols(&["a", "b"]),
            &[
                vec!["1,2".into(), "plain".into()],
                vec!["x\"y".into(), "z".into()],
            ],
        )
        .unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content.lines().count(), 3);
        assert!(content.contains("\"1,2\""));
        assert!(content.contains("\"x\"\"y\""));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn cell_csv_fields() {
        let cell = Cell {
            ok: false,
            elapsed: SimDuration::from_millis(10),
            gc: SimDuration::from_millis(5),
            peak: ByteSize(123),
        };
        let row = cell_csv(&cell);
        assert_eq!(row[0], "oom");
        assert_eq!(row[3], "123");
    }
}
