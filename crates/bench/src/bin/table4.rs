//! Table 4: the TPC-H datasets — paper-reported row counts vs the
//! scaled generators.
//!
//! Usage: `table4 [--jobs N]`.

use itask_bench::sweep::{self, RunSpec};
use itask_bench::{cols, print_table};
use workloads::tpch::{TpchConfig, TpchScale};

fn main() {
    let h = sweep::harness();
    let jobs = h.jobs;
    let mut log = h.log("table4");

    let header = cols(&[
        "scale",
        "paper size",
        "paper #Cust",
        "paper #Order",
        "paper #LineItem",
        "scaled #Cust",
        "scaled #Order",
        "scaled #LineItem",
        "scaled bytes",
    ]);
    let paper_sizes = ["9.8GB", "19.7GB", "29.7GB", "49.6GB", "99.8GB", "150.4GB"];
    let specs: Vec<RunSpec<Vec<String>>> = TpchScale::TABLE4
        .iter()
        .enumerate()
        .map(|(i, scale)| {
            let scale = *scale;
            sweep::spec(format!("table4 {}", scale.label()), move || {
                let cfg = TpchConfig::preset(scale, 42);
                let (pc, po, pl) = scale.paper_counts();
                vec![
                    scale.label().to_string(),
                    paper_sizes[i].to_string(),
                    format!("{pc:.3e}"),
                    format!("{po:.3e}"),
                    format!("{pl:.3e}"),
                    format!("{}", cfg.customers),
                    format!("{}", cfg.orders),
                    format!("{}", cfg.lineitems),
                    format!("{}", cfg.total_bytes()),
                ]
            })
        })
        .collect();
    let out = sweep::run_all(jobs, specs);
    log.absorb(&out);
    let rows: Vec<Vec<String>> = out.into_iter().map(|o| o.result).collect();
    print_table("Table 4: TPC-H inputs (scaled 1/1024)", &header, &rows);
    log.finish();
}
