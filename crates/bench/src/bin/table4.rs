//! Table 4: the TPC-H datasets — paper-reported row counts vs the
//! scaled generators.

use itask_bench::{cols, print_table};
use workloads::tpch::{TpchConfig, TpchScale};

fn main() {
    let header = cols(&[
        "scale",
        "paper size",
        "paper #Cust",
        "paper #Order",
        "paper #LineItem",
        "scaled #Cust",
        "scaled #Order",
        "scaled #LineItem",
        "scaled bytes",
    ]);
    let paper_sizes = ["9.8GB", "19.7GB", "29.7GB", "49.6GB", "99.8GB", "150.4GB"];
    let mut rows = Vec::new();
    for (i, scale) in TpchScale::TABLE4.iter().enumerate() {
        let cfg = TpchConfig::preset(*scale, 42);
        let (pc, po, pl) = scale.paper_counts();
        rows.push(vec![
            scale.label().to_string(),
            paper_sizes[i].to_string(),
            format!("{pc:.3e}"),
            format!("{po:.3e}"),
            format!("{pl:.3e}"),
            format!("{}", cfg.customers),
            format!("{}", cfg.orders),
            format!("{}", cfg.lineitems),
            format!("{}", cfg.total_bytes()),
        ]);
    }
    print_table("Table 4: TPC-H inputs (scaled 1/1024)", &header, &rows);
}
