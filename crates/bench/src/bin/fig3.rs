//! Figure 3: memory footprint over time, with and without ITasks, on a
//! workload that drives the regular execution into an OME. Prints the
//! node-0 heap-occupancy series (downsampled) for both executions, the
//! OME point of the regular run, and the ITask run's interrupt count.
//!
//! Usage: `fig3 [--jobs N]`.

use apps::hyracks_apps::{wc, HyracksParams};
use itask_bench::{print_table, sweep};
use simcore::{ByteSize, SCALE};
use workloads::webmap::WebmapSize;

fn series(report: &simcluster::JobReport) -> Vec<(f64, f64)> {
    report
        .nodes
        .first()
        .and_then(|n| n.log.series("heap_used"))
        .map(|s| {
            s.downsample_max(40)
                .into_iter()
                .map(|p| {
                    (
                        p.at.as_secs_f64() * SCALE as f64,
                        p.value / (1 << 20) as f64,
                    )
                })
                .collect()
        })
        .unwrap_or_default()
}

fn sparkline(points: &[(f64, f64)], cap_mib: f64) -> String {
    const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    points
        .iter()
        .map(|&(_, v)| {
            let i = ((v / cap_mib) * 7.0).round().clamp(0.0, 7.0) as usize;
            RAMP[i]
        })
        .collect()
}

/// Everything a run contributes to the figure, extracted worker-side.
struct Fig3Run {
    ok: bool,
    paper_secs: f64,
    points: Vec<(f64, f64)>,
    interrupts: f64,
    serializations: f64,
    lugcs: f64,
}

fn extract<T>(s: &apps::RunSummary<T>) -> Fig3Run {
    Fig3Run {
        ok: s.ok(),
        paper_secs: s.paper_seconds(),
        points: series(&s.report),
        interrupts: s.report.counter("itask.interrupts")
            + s.report.counter("itask.emergency_interrupts"),
        serializations: s.report.counter("itask.serializations"),
        lugcs: s.report.counter("monitor.lugcs"),
    }
}

fn main() {
    let h = sweep::harness();
    let jobs = h.jobs;
    let mut log = h.log("fig3");

    let size = WebmapSize::G27; // regular WC dies here; ITask survives
    let params = HyracksParams {
        threads: 8,
        ..HyracksParams::default()
    };
    let cap_mib = params.heap_per_node.as_u64() as f64 / (1 << 20) as f64;

    println!(
        "Figure 3: heap occupancy over time, WC on the {} dataset",
        size.label()
    );
    println!(
        "(node 0, heap capacity {} ≙ 12GB; x = paper-equivalent seconds)\n",
        params.heap_per_node
    );

    let params_ref = &params;
    let out = sweep::run_all(
        jobs,
        vec![
            sweep::spec("fig3 wc regular", move || {
                extract(&wc::run_regular(size, params_ref))
            }),
            sweep::spec("fig3 wc itask", move || {
                extract(&wc::run_itask(size, params_ref))
            }),
        ],
    );
    log.absorb(&out);
    let mut it = out.into_iter().map(|o| o.result);
    let regular = it.next().expect("regular run");
    let itask = it.next().expect("itask run");

    println!(
        "regular ({}): {}",
        if regular.ok {
            "completed".into()
        } else {
            format!("OME at {:.1}s", regular.paper_secs)
        },
        sparkline(&regular.points, cap_mib)
    );
    println!(
        "ITask   ({}): {}",
        if itask.ok {
            format!("completed at {:.1}s", itask.paper_secs)
        } else {
            "OME".into()
        },
        sparkline(&itask.points, cap_mib)
    );
    println!(
        "\nITask pressure handling: {} interrupts, {} serializations, {} LUGCs observed",
        itask.interrupts, itask.serializations, itask.lugcs,
    );

    // Numeric tail for EXPERIMENTS.md.
    let header = vec![
        "t (paper s)".to_string(),
        "regular MiB".to_string(),
        "ITask MiB".to_string(),
    ];
    let n = regular.points.len().max(itask.points.len());
    let rows: Vec<Vec<String>> = (0..n)
        .map(|i| {
            let r = regular.points.get(i);
            let t = itask.points.get(i);
            vec![
                r.or(t).map(|p| format!("{:8.1}", p.0)).unwrap_or_default(),
                r.map(|p| format!("{:6.2}", p.1)).unwrap_or_default(),
                t.map(|p| format!("{:6.2}", p.1)).unwrap_or_default(),
            ]
        })
        .collect();
    print_table("Figure 3 series (downsampled)", &header, &rows);
    let _ = ByteSize::ZERO;
    log.finish();
}
