//! Figure 3: memory footprint over time, with and without ITasks, on a
//! workload that drives the regular execution into an OME. Prints the
//! node-0 heap-occupancy series (downsampled) for both executions, the
//! OME point of the regular run, and the ITask run's interrupt count.

use apps::hyracks_apps::{wc, HyracksParams};
use itask_bench::print_table;
use simcore::{ByteSize, SCALE};
use workloads::webmap::WebmapSize;

fn series(report: &simcluster::JobReport) -> Vec<(f64, f64)> {
    report
        .nodes
        .first()
        .and_then(|n| n.log.series("heap_used"))
        .map(|s| {
            s.downsample_max(40)
                .into_iter()
                .map(|p| {
                    (
                        p.at.as_secs_f64() * SCALE as f64,
                        p.value / (1 << 20) as f64,
                    )
                })
                .collect()
        })
        .unwrap_or_default()
}

fn sparkline(points: &[(f64, f64)], cap_mib: f64) -> String {
    const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    points
        .iter()
        .map(|&(_, v)| {
            let i = ((v / cap_mib) * 7.0).round().clamp(0.0, 7.0) as usize;
            RAMP[i]
        })
        .collect()
}

fn main() {
    let size = WebmapSize::G27; // regular WC dies here; ITask survives
    let params = HyracksParams {
        threads: 8,
        ..HyracksParams::default()
    };
    let cap_mib = params.heap_per_node.as_u64() as f64 / (1 << 20) as f64;

    println!(
        "Figure 3: heap occupancy over time, WC on the {} dataset",
        size.label()
    );
    println!(
        "(node 0, heap capacity {} ≙ 12GB; x = paper-equivalent seconds)\n",
        params.heap_per_node
    );

    let regular = wc::run_regular(size, &params);
    let reg_points = series(&regular.report);
    println!(
        "regular ({}): {}",
        if regular.ok() {
            "completed".into()
        } else {
            format!("OME at {:.1}s", regular.paper_seconds())
        },
        sparkline(&reg_points, cap_mib)
    );

    let itask = wc::run_itask(size, &params);
    let it_points = series(&itask.report);
    println!(
        "ITask   ({}): {}",
        if itask.ok() {
            format!("completed at {:.1}s", itask.paper_seconds())
        } else {
            "OME".into()
        },
        sparkline(&it_points, cap_mib)
    );
    println!(
        "\nITask pressure handling: {} interrupts, {} serializations, {} LUGCs observed",
        itask.report.counter("itask.interrupts")
            + itask.report.counter("itask.emergency_interrupts"),
        itask.report.counter("itask.serializations"),
        itask.report.counter("monitor.lugcs"),
    );

    // Numeric tail for EXPERIMENTS.md.
    let header = vec![
        "t (paper s)".to_string(),
        "regular MiB".to_string(),
        "ITask MiB".to_string(),
    ];
    let n = reg_points.len().max(it_points.len());
    let rows: Vec<Vec<String>> = (0..n)
        .map(|i| {
            let r = reg_points.get(i);
            let t = it_points.get(i);
            vec![
                r.or(t).map(|p| format!("{:8.1}", p.0)).unwrap_or_default(),
                r.map(|p| format!("{:6.2}", p.1)).unwrap_or_default(),
                t.map(|p| format!("{:6.2}", p.1)).unwrap_or_default(),
            ]
        })
        .collect();
    print_table("Figure 3 series (downsampled)", &header, &rows);
    let _ = ByteSize::ZERO;
}
