//! Figure 11: (a) WC and (b) II on the 10GB dataset under 12/10/8/6 GB
//! heaps — regular (8 threads) vs ITask; (c) active ITask instances
//! over time for WC on the 14GB dataset.

use apps::hyracks_apps::{ii, wc, HyracksParams};
use itask_bench::{print_table, Cell};
use simcore::{ByteSize, SCALE};
use workloads::webmap::WebmapSize;

const HEAPS_MIB: [u64; 4] = [12, 10, 8, 6];

fn params(heap_mib: u64) -> HyracksParams {
    HyracksParams {
        threads: 8,
        heap_per_node: ByteSize::mib(heap_mib),
        ..HyracksParams::default()
    }
}

fn heap_sweep<T>(
    name: &str,
    regular: impl Fn(&HyracksParams) -> apps::RunSummary<T>,
    itask: impl Fn(&HyracksParams) -> apps::RunSummary<T>,
) {
    let header: Vec<String> = ["heap", "regular (8 thr)", "ITask", "peak reg", "peak ITask"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for h in HEAPS_MIB {
        let p = params(h);
        let reg = Cell::from_summary(&regular(&p));
        let it = Cell::from_summary(&itask(&p));
        rows.push(vec![
            format!("{}GB", h),
            reg.show(),
            it.show(),
            format!("{}", reg.peak),
            format!("{}", it.peak),
        ]);
    }
    print_table(
        &format!("Figure 11: {name} on the 10GB dataset under shrinking heaps"),
        &header,
        &rows,
    );
}

fn main() {
    heap_sweep(
        "(a) WC",
        |p| wc::run_regular(WebmapSize::G10, p),
        |p| wc::run_itask(WebmapSize::G10, p),
    );
    heap_sweep(
        "(b) II",
        |p| ii::run_regular(WebmapSize::G10, p),
        |p| ii::run_itask(WebmapSize::G10, p),
    );

    // (c) Active ITask instances over time, WC on 14GB.
    let p = params(12);
    let run = wc::run_itask(WebmapSize::G14, &p);
    println!("\n=== Figure 11(c): active ITask instances over time (WC, 14GB) ===");
    println!(
        "finished in {:.1} paper-equivalent seconds; {}",
        run.paper_seconds(),
        if run.ok() { "completed" } else { "FAILED" }
    );
    if let Some(series) = run
        .report
        .nodes
        .first()
        .and_then(|n| n.log.series("active_threads"))
    {
        let avg = series.time_weighted_mean();
        let max = series.max_value();
        println!("node 0: mean active instances {avg:.2}, peak {max:.0}");
        let pts = series.downsample_max(60);
        let line: String = pts
            .iter()
            .map(|s| char::from_digit((s.value as u32).min(9), 10).unwrap_or('9'))
            .collect();
        println!("instances (downsampled, 0-9): {line}");
        let t_end = pts
            .last()
            .map(|s| s.at.as_secs_f64() * SCALE as f64)
            .unwrap_or(0.0);
        println!("x axis: 0 .. {t_end:.1} paper-equivalent seconds");
    }
    // The paper's per-operator decomposition (Map / Reduce / Merge).
    for name in ["active_map", "active_reduce", "active_merge"] {
        if let Some(series) = run.report.nodes.first().and_then(|n| n.log.series(name)) {
            let pts = series.downsample_max(60);
            let line: String = pts
                .iter()
                .map(|s| char::from_digit((s.value as u32).min(9), 10).unwrap_or('9'))
                .collect();
            println!(
                "{:<14} mean {:>5.2}, peak {:>2.0}: {line}",
                name.trim_start_matches("active_"),
                series.time_weighted_mean(),
                series.max_value()
            );
        }
    }
}
