//! Figure 11: (a) WC and (b) II on the 10GB dataset under 12/10/8/6 GB
//! heaps — regular (8 threads) vs ITask; (c) active ITask instances
//! over time for WC on the 14GB dataset.
//!
//! Usage: `fig11 [--jobs N]`.

use apps::hyracks_apps::{ii, wc, HyracksParams};
use itask_bench::{print_table, sweep, Cell};
use simcore::{ByteSize, SCALE};
use workloads::webmap::WebmapSize;

const HEAPS_MIB: [u64; 4] = [12, 10, 8, 6];

fn params(heap_mib: u64) -> HyracksParams {
    HyracksParams {
        threads: 8,
        heap_per_node: ByteSize::mib(heap_mib),
        ..HyracksParams::default()
    }
}

/// A cell plus, for the fig 11(c) run, the node report carrying the
/// activity log series.
type Fig11Res = (Cell, Option<simcluster::JobReport>);

fn render_heap_sweep(name: &str, cells: &mut impl Iterator<Item = Fig11Res>) {
    let header: Vec<String> = ["heap", "regular (8 thr)", "ITask", "peak reg", "peak ITask"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for h in HEAPS_MIB {
        let (reg, _) = cells.next().expect("regular cell");
        let (it, _) = cells.next().expect("itask cell");
        rows.push(vec![
            format!("{}GB", h),
            reg.show(),
            it.show(),
            format!("{}", reg.peak),
            format!("{}", it.peak),
        ]);
    }
    print_table(
        &format!("Figure 11: {name} on the 10GB dataset under shrinking heaps"),
        &header,
        &rows,
    );
}

fn main() {
    let h = sweep::harness();
    let jobs = h.jobs;
    let mut log = h.log("fig11");

    // (a)/(b): 4 heaps × {regular, itask} × {WC, II}; (c): one full run
    // keeping its report. All independent — one batch.
    let mut specs: Vec<sweep::RunSpec<Fig11Res>> = Vec::new();
    for prog in ["wc", "ii"] {
        for h in HEAPS_MIB {
            specs.push(sweep::spec(format!("fig11 {prog} {h}GB reg"), move || {
                let p = params(h);
                let cell = match prog {
                    "wc" => Cell::from_summary(&wc::run_regular(WebmapSize::G10, &p)),
                    _ => Cell::from_summary(&ii::run_regular(WebmapSize::G10, &p)),
                };
                (cell, None)
            }));
            specs.push(sweep::spec(
                format!("fig11 {prog} {h}GB itask"),
                move || {
                    let p = params(h);
                    let cell = match prog {
                        "wc" => Cell::from_summary(&wc::run_itask(WebmapSize::G10, &p)),
                        _ => Cell::from_summary(&ii::run_itask(WebmapSize::G10, &p)),
                    };
                    (cell, None)
                },
            ));
        }
    }
    specs.push(sweep::spec("fig11 wc G14 itask (c)", || {
        let run = wc::run_itask(WebmapSize::G14, &params(12));
        (Cell::from_summary(&run), Some(run.report))
    }));
    let out = sweep::run_all(jobs, specs);
    log.absorb(&out);
    let mut results = out.into_iter().map(|o| o.result);

    render_heap_sweep("(a) WC", &mut results);
    render_heap_sweep("(b) II", &mut results);

    // (c) Active ITask instances over time, WC on 14GB.
    let (cell, report) = results.next().expect("fig11(c) run");
    let report = report.expect("fig11(c) keeps its report");
    println!("\n=== Figure 11(c): active ITask instances over time (WC, 14GB) ===");
    println!(
        "finished in {:.1} paper-equivalent seconds; {}",
        cell.paper_secs(),
        if cell.ok { "completed" } else { "FAILED" }
    );
    if let Some(series) = report
        .nodes
        .first()
        .and_then(|n| n.log.series("active_threads"))
    {
        let avg = series.time_weighted_mean();
        let max = series.max_value();
        println!("node 0: mean active instances {avg:.2}, peak {max:.0}");
        let pts = series.downsample_max(60);
        let line: String = pts
            .iter()
            .map(|s| char::from_digit((s.value as u32).min(9), 10).unwrap_or('9'))
            .collect();
        println!("instances (downsampled, 0-9): {line}");
        let t_end = pts
            .last()
            .map(|s| s.at.as_secs_f64() * SCALE as f64)
            .unwrap_or(0.0);
        println!("x axis: 0 .. {t_end:.1} paper-equivalent seconds");
    }
    // The paper's per-operator decomposition (Map / Reduce / Merge).
    for name in ["active_map", "active_reduce", "active_merge"] {
        if let Some(series) = report.nodes.first().and_then(|n| n.log.series(name)) {
            let pts = series.downsample_max(60);
            let line: String = pts
                .iter()
                .map(|s| char::from_digit((s.value as u32).min(9), 10).unwrap_or('9'))
                .collect();
            println!(
                "{:<14} mean {:>5.2}, peak {:>2.0}: {line}",
                name.trim_start_matches("active_"),
                series.time_weighted_mean(),
                series.max_value()
            );
        }
    }
    log.finish();
}
