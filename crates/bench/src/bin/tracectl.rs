//! Trace-analysis CLI for `--trace` dumps.
//!
//! ```text
//! tracectl report <trace>     per-run GC shares, interrupt-chain
//!                             latency distributions, Figure-3-style
//!                             sequencing, per-tenant breakdowns
//! tracectl diff <a> <b>       A/B event-count and latency deltas
//! tracectl perfetto <trace> [out]
//!                             re-export as a Perfetto-compatible
//!                             Chrome trace with causal async spans
//!                             (stdout when no output path is given)
//! ```
//!
//! Paths may point at either the Chrome JSON (`foo.json`) or its
//! compact JSONL twin (`foo.json.jsonl`); analysis always reads the
//! JSONL form, falling back to the `<path>.jsonl` sibling when given
//! the Chrome file.

use itask_bench::tracefmt;

fn usage() -> ! {
    eprintln!(
        "usage: tracectl report <trace> | tracectl diff <a> <b> | tracectl perfetto <trace> [out]"
    );
    std::process::exit(2);
}

/// Resolves a user-supplied path to the JSONL file to analyze.
fn jsonl_path(arg: &str) -> String {
    if (arg.ends_with(".jsonl") || std::path::Path::new(arg).extension().is_none())
        && std::path::Path::new(arg).exists()
    {
        return arg.to_string();
    }
    let sibling = format!("{arg}.jsonl");
    if std::path::Path::new(&sibling).exists() {
        sibling
    } else {
        arg.to_string()
    }
}

fn load(arg: &str) -> Vec<tracefmt::TraceRun> {
    let path = jsonl_path(arg);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("tracectl: cannot read {path}: {e}");
        std::process::exit(1);
    });
    tracefmt::load_jsonl(&text).unwrap_or_else(|e| {
        eprintln!("tracectl: {path}: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("report") if args.len() == 2 => {
            print!("{}", tracefmt::report(&load(&args[1])));
        }
        Some("diff") if args.len() == 3 => {
            print!("{}", tracefmt::diff(&load(&args[1]), &load(&args[2])));
        }
        Some("perfetto") if args.len() == 2 || args.len() == 3 => {
            let doc = tracefmt::perfetto(&load(&args[1]));
            match args.get(2) {
                Some(out) => std::fs::write(out, &doc).unwrap_or_else(|e| {
                    eprintln!("tracectl: cannot write {out}: {e}");
                    std::process::exit(1);
                }),
                None => print!("{doc}"),
            }
        }
        _ => usage(),
    }
}
