//! Chaos ablation (§6.1 format): WC and II under escalating fault
//! schedules, regular vs ITask. The regular engine has no recovery
//! plane — a node crash or an unlucky transient kills the job — while
//! the IRS retries transient I/O, rebuilds corrupted spills from
//! lineage and requeues a dead node's partitions, so ITask must survive
//! every schedule with results identical to its fault-free run (checked
//! here against the recovery counters) at a bounded overhead.
//!
//! Usage: `faults [--jobs N] [--wc-only|--ii-only]`. Output is
//! deterministic: all virtual time, seeded workloads, seeded fault
//! schedules.

use apps::hyracks_apps::{ii, wc, HyracksParams};
use apps::RunSummary;
use itask_bench::sweep::{self, SweepLog};
use itask_bench::{cols, print_table};
use simcore::{ByteSize, FaultPlan, NodeId, SimDuration, SimTime};
use workloads::webmap::WebmapSize;

const SIZE: WebmapSize = WebmapSize::G3;

fn params() -> HyracksParams {
    HyracksParams {
        heap_per_node: ByteSize::mib(64),
        ..Default::default()
    }
}

/// The escalating schedules. `mid_run` is half the program's fault-free
/// elapsed time — where the node crash lands.
fn schedules(mid_run: SimDuration) -> Vec<(&'static str, FaultPlan)> {
    let crash_at = SimTime::ZERO + mid_run;
    let slow_from = SimTime::ZERO + SimDuration::from_nanos(mid_run.as_nanos() / 2);
    let slow_until = slow_from + mid_run;
    vec![
        ("fault-free", FaultPlan::new(11)),
        (
            "transient I/O (20‰)",
            FaultPlan::new(11).with_disk_transients(20),
        ),
        (
            "+ spill corruption (10‰)",
            FaultPlan::new(11)
                .with_disk_transients(20)
                .with_corruption(10),
        ),
        (
            "+ net slowdown (4x window)",
            FaultPlan::new(11)
                .with_disk_transients(20)
                .with_corruption(10)
                .with_slowdown(slow_from, slow_until, 4.0),
        ),
        (
            "+ node crash (mid-run)",
            FaultPlan::new(11)
                .with_disk_transients(20)
                .with_corruption(10)
                .with_slowdown(slow_from, slow_until, 4.0)
                .with_crash(NodeId(3), crash_at),
        ),
        (
            "full chaos (50‰, 2 crashes)",
            FaultPlan::new(11)
                .with_disk_transients(50)
                .with_corruption(25)
                .with_slowdown(slow_from, slow_until, 4.0)
                .with_crash(NodeId(3), crash_at)
                .with_crash(NodeId(7), SimTime::ZERO + mid_run + mid_run),
        ),
    ]
}

fn outcome_cell<T>(s: &RunSummary<T>, clean_secs: f64) -> String {
    match &s.result {
        Ok(_) => {
            let over = if clean_secs > 0.0 {
                (s.paper_seconds() / clean_secs - 1.0) * 100.0
            } else {
                0.0
            };
            format!("survives {:+.1}%", over)
        }
        Err(e) => format!("DIES ({})", short_err(e)),
    }
}

fn short_err(e: &simcore::SimError) -> String {
    let s = e.to_string();
    match s.split_once(':') {
        Some((head, _)) => head.to_string(),
        None => s,
    }
}

fn recovery_cell<T>(s: &RunSummary<T>) -> String {
    let r = &s.report;
    format!(
        "{:.0} retries / {:.0} rebuilds / {:.0} requeued",
        r.counter("itask.transient_io_retries"),
        r.counter("itask.corruption_recoveries"),
        r.counter("itask.crash_requeued_partitions"),
    )
}

fn ablate<T: Ord + std::fmt::Debug + Send>(
    jobs: usize,
    log: &mut SweepLog,
    key: &str,
    name: &str,
    run_regular: impl Fn(&HyracksParams) -> RunSummary<T> + Sync,
    run_itask: impl Fn(&HyracksParams) -> RunSummary<T> + Sync,
) {
    // Phase 1: the fault-free runs. The schedules depend on their
    // elapsed times (the crash lands mid-run), so this is a barrier.
    let (run_regular, run_itask) = (&run_regular, &run_itask);
    let clean = sweep::run_all(
        jobs,
        vec![
            sweep::spec(format!("faults {key} clean reg"), move || {
                run_regular(&params())
            }),
            sweep::spec(format!("faults {key} clean itask"), move || {
                run_itask(&params())
            }),
        ],
    );
    log.absorb(&clean);
    let mut clean = clean.into_iter().map(|o| o.result);
    let clean_reg = clean.next().expect("clean regular run");
    let clean_it = clean.next().expect("clean itask run");
    let reg_secs = clean_reg.paper_seconds();
    let it_secs = clean_it.paper_seconds();
    let mut clean_out = clean_it.result.expect("fault-free ITask run must complete");
    clean_out.sort();
    // The crash must land inside *both* engines' lifetimes, so aim at
    // half of the shorter fault-free run.
    let mid = SimDuration::from_nanos(
        clean_it
            .report
            .elapsed
            .min(clean_reg.report.elapsed)
            .as_nanos()
            / 2,
    );

    // Phase 2: every (schedule, engine) run is independent.
    let mut specs: Vec<sweep::RunSpec<RunSummary<T>>> = Vec::new();
    for (label, plan) in schedules(mid) {
        let reg_plan = plan.clone();
        specs.push(sweep::spec(
            format!("faults {key} {label} reg"),
            move || {
                let mut p = params();
                p.fault_plan = Some(reg_plan);
                run_regular(&p)
            },
        ));
        specs.push(sweep::spec(
            format!("faults {key} {label} itask"),
            move || {
                let mut p = params();
                p.fault_plan = Some(plan);
                run_itask(&p)
            },
        ));
    }
    let out = sweep::run_all(jobs, specs);
    log.absorb(&out);
    let mut runs = out.into_iter().map(|o| o.result);

    let mut rows = Vec::new();
    for (label, _) in schedules(mid) {
        let reg = runs.next().expect("regular schedule run");
        let it = runs.next().expect("itask schedule run");
        let identical = match &it.result {
            Ok(out) => {
                let mut out = out.iter().collect::<Vec<_>>();
                out.sort();
                let mut clean = clean_out.iter().collect::<Vec<_>>();
                clean.sort();
                if out == clean {
                    "bit-identical"
                } else {
                    "MISMATCH"
                }
            }
            Err(_) => "-",
        };
        rows.push(vec![
            label.to_string(),
            outcome_cell(&reg, reg_secs),
            outcome_cell(&it, it_secs),
            identical.to_string(),
            recovery_cell(&it),
        ]);
    }
    print_table(
        &format!("Chaos ablation: {name} ({SIZE:?}, 10 nodes, escalating schedules)"),
        &cols(&[
            "schedule",
            "regular",
            "ITask",
            "results",
            "IRS recovery (io/corrupt/crash)",
        ]),
        &rows,
    );
}

fn main() {
    let mut h = sweep::harness();
    let jobs = h.jobs;
    let wc_only = h.flag("--wc-only");
    let ii_only = h.flag("--ii-only");
    let mut log = h.log("faults");
    if !ii_only {
        ablate(
            jobs,
            &mut log,
            "wc",
            "WC",
            |p| wc::run_regular(SIZE, p),
            |p| wc::run_itask(SIZE, p),
        );
    }
    if !wc_only {
        ablate(
            jobs,
            &mut log,
            "ii",
            "II",
            |p| ii::run_regular(SIZE, p),
            |p| ii::run_itask(SIZE, p),
        );
    }
    log.finish();
}
