//! Table 6: the summary comparison — #TS/%TS (time wins/savings),
//! #HS/%HS (heap wins/savings) across the six datasets per program, and
//! the scalability ratio between the largest datasets the ITask and
//! regular versions can process (including the paper's 250x/600x
//! upper-bound probes for GR/HJ).
//!
//! Usage: `table6 [program ...]`; `--quick` limits to 3 datasets.

use apps::hyracks_apps::{gr, hj, hs, ii, wc, HyracksParams};
use apps::RunSummary;
use itask_bench::{cols, print_table};
use workloads::tpch::TpchScale;
use workloads::webmap::WebmapSize;

const THREADS: [usize; 5] = [1, 2, 4, 6, 8];

fn params(threads: usize) -> HyracksParams {
    HyracksParams {
        threads,
        ..HyracksParams::default()
    }
}

struct Summary {
    time_wins: usize,
    time_savings: Vec<f64>,
    heap_wins: usize,
    heap_savings: Vec<f64>,
    datasets: usize,
    reg_largest: Option<usize>,
    itask_largest: Option<usize>,
}

fn summarize<T>(
    n_sets: usize,
    regular: impl Fn(usize, usize) -> RunSummary<T>,
    itask: impl Fn(usize) -> RunSummary<T>,
) -> Summary {
    let mut s = Summary {
        time_wins: 0,
        time_savings: Vec::new(),
        heap_wins: 0,
        heap_savings: Vec::new(),
        datasets: n_sets,
        reg_largest: None,
        itask_largest: None,
    };
    for d in 0..n_sets {
        // Regular at its best thread count.
        let mut best: Option<RunSummary<T>> = None;
        for &t in &THREADS {
            let r = regular(d, t);
            let better = match (&best, r.ok()) {
                (None, _) => true,
                (Some(b), true) => !b.ok() || r.report.elapsed < b.report.elapsed,
                (Some(b), false) => !b.ok() && r.report.elapsed > b.report.elapsed,
            };
            if better {
                best = Some(r);
            }
        }
        let reg = best.expect("ran at least one config");
        let it = itask(d);
        if reg.ok() {
            s.reg_largest = Some(d);
        }
        if it.ok() {
            s.itask_largest = Some(d);
        }
        if it.ok() && (!reg.ok() || it.report.elapsed <= reg.report.elapsed) {
            s.time_wins += 1;
        }
        if it.ok() && reg.ok() {
            let rs = reg.report.elapsed.as_secs_f64();
            let is = it.report.elapsed.as_secs_f64();
            s.time_savings.push((rs - is) / rs);
            let rp = reg.peak_heap().as_u64() as f64;
            let ip = it.peak_heap().as_u64() as f64;
            s.heap_savings.push((rp - ip) / rp);
            if ip <= rp {
                s.heap_wins += 1;
            }
        } else if it.ok() {
            // Regular failed: ITask wins on memory by surviving.
            s.heap_wins += 1;
        }
    }
    s
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let want = |p: &str| {
        let progs: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
        progs.is_empty() || progs.iter().any(|a| a.as_str() == p)
    };
    let webmap: Vec<WebmapSize> = {
        let mut v = WebmapSize::ALL.to_vec();
        v.reverse();
        v
    };
    let tpch = TpchScale::TABLE4;
    let n_web = if quick { 3 } else { webmap.len() };
    let n_tpch = if quick { 3 } else { tpch.len() };

    // Paper-scale dataset sizes in GB for the scalability ratio.
    let web_gb = [3.0, 10.0, 14.0, 27.0, 44.0, 72.0];
    let tpch_gb = [9.8, 19.7, 29.7, 49.6, 99.8, 150.4];

    let mut rows = Vec::new();
    let mut add = |name: &str, s: Summary, sizes: &[f64], itask_cap_gb: Option<f64>| {
        let reg_gb = s.reg_largest.map(|d| sizes[d]).unwrap_or(0.0);
        // The ITask versions processed every tested dataset; the paper
        // probes further (600x for HJ, 250x for GR).
        let it_gb = itask_cap_gb
            .or(s.itask_largest.map(|d| sizes[d]))
            .unwrap_or(0.0);
        let scal = if reg_gb > 0.0 {
            it_gb / reg_gb
        } else {
            f64::NAN
        };
        rows.push(vec![
            name.to_string(),
            format!("{}/{}", s.time_wins, s.datasets),
            format!("{:.1}%", mean(&s.time_savings) * 100.0),
            format!("{}/{}", s.heap_wins, s.datasets),
            format!("{:.1}%", mean(&s.heap_savings) * 100.0),
            format!("{:.2}x", scal),
        ]);
    };

    if want("wc") {
        let s = summarize(
            n_web,
            |d, t| wc::run_regular(webmap[d], &params(t)),
            |d| wc::run_itask(webmap[d], &params(8)),
        );
        add("WC", s, &web_gb, None);
    }
    if want("hs") {
        let s = summarize(
            n_web,
            |d, t| hs::run_regular(webmap[d], &params(t)),
            |d| hs::run_itask(webmap[d], &params(8)),
        );
        add("HS", s, &web_gb, None);
    }
    if want("ii") {
        let s = summarize(
            n_web,
            |d, t| ii::run_regular(webmap[d], &params(t)),
            |d| ii::run_itask(webmap[d], &params(8)),
        );
        add("II", s, &web_gb, None);
    }
    if want("hj") {
        let s = summarize(
            n_tpch,
            |d, t| hj::run_regular(tpch[d], &params(t)),
            |d| hj::run_itask(tpch[d], &params(8)),
        );
        // Probe the paper's 600x upper bound.
        let probe = hj::run_itask(TpchScale::X600, &params(8));
        add("HJ", s, &tpch_gb, probe.ok().then_some(600.0 * 9.8 / 10.0));
    }
    if want("gr") {
        let s = summarize(
            n_tpch,
            |d, t| gr::run_regular(tpch[d], &params(t)),
            |d| gr::run_itask(tpch[d], &params(8)),
        );
        let probe = gr::run_itask(TpchScale::X250, &params(8));
        add("GR", s, &tpch_gb, probe.ok().then_some(250.0 * 9.8 / 10.0));
    }

    let header = cols(&[
        "Name",
        "#TS",
        "%TS (mean)",
        "#HS",
        "%HS (mean)",
        "Scalability",
    ]);
    print_table("Table 6: ITask vs regular summary", &header, &rows);
}
