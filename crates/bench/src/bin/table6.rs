//! Table 6: the summary comparison — #TS/%TS (time wins/savings),
//! #HS/%HS (heap wins/savings) across the six datasets per program, and
//! the scalability ratio between the largest datasets the ITask and
//! regular versions can process (including the paper's 250x/600x
//! upper-bound probes for GR/HJ).
//!
//! Usage: `table6 [--jobs N] [program ...]`; `--quick` limits to 3 datasets.

use apps::hyracks_apps::{gr, hj, hs, ii, wc, HyracksParams};
use itask_bench::sweep::{self, RunSpec};
use itask_bench::{cols, print_table, Cell};
use workloads::tpch::TpchScale;
use workloads::webmap::WebmapSize;

const THREADS: [usize; 5] = [1, 2, 4, 6, 8];

fn params(threads: usize) -> HyracksParams {
    HyracksParams {
        threads,
        ..HyracksParams::default()
    }
}

struct Summary {
    time_wins: usize,
    time_savings: Vec<f64>,
    heap_wins: usize,
    heap_savings: Vec<f64>,
    datasets: usize,
    reg_largest: Option<usize>,
    itask_largest: Option<usize>,
}

/// Replays the serial selection over measured cells: per dataset, the
/// five regular runs (thread sweep) followed by the ITask run.
fn summarize(n_sets: usize, cells: &mut impl Iterator<Item = Cell>) -> Summary {
    let mut s = Summary {
        time_wins: 0,
        time_savings: Vec::new(),
        heap_wins: 0,
        heap_savings: Vec::new(),
        datasets: n_sets,
        reg_largest: None,
        itask_largest: None,
    };
    for d in 0..n_sets {
        // Regular at its best thread count.
        let mut best: Option<Cell> = None;
        for _ in &THREADS {
            let r = cells.next().expect("regular cell");
            let better = match (&best, r.ok) {
                (None, _) => true,
                (Some(b), true) => !b.ok || r.elapsed < b.elapsed,
                (Some(b), false) => !b.ok && r.elapsed > b.elapsed,
            };
            if better {
                best = Some(r);
            }
        }
        let reg = best.expect("ran at least one config");
        let it = cells.next().expect("itask cell");
        if reg.ok {
            s.reg_largest = Some(d);
        }
        if it.ok {
            s.itask_largest = Some(d);
        }
        if it.ok && (!reg.ok || it.elapsed <= reg.elapsed) {
            s.time_wins += 1;
        }
        if it.ok && reg.ok {
            let rs = reg.elapsed.as_secs_f64();
            let is = it.elapsed.as_secs_f64();
            s.time_savings.push((rs - is) / rs);
            let rp = reg.peak.as_u64() as f64;
            let ip = it.peak.as_u64() as f64;
            s.heap_savings.push((rp - ip) / rp);
            if ip <= rp {
                s.heap_wins += 1;
            }
        } else if it.ok {
            // Regular failed: ITask wins on memory by surviving.
            s.heap_wins += 1;
        }
    }
    s
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn main() {
    let mut h = sweep::harness();
    let jobs = h.jobs;
    let quick = h.flag("--quick");
    let args = h.args.clone();
    let want = |p: &str| {
        let progs: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
        progs.is_empty() || progs.iter().any(|a| a.as_str() == p)
    };
    let webmap: Vec<WebmapSize> = {
        let mut v = WebmapSize::ALL.to_vec();
        v.reverse();
        v
    };
    let tpch = TpchScale::TABLE4;
    let n_web = if quick { 3 } else { webmap.len() };
    let n_tpch = if quick { 3 } else { tpch.len() };
    let mut log = h.log("table6");

    // Paper-scale dataset sizes in GB for the scalability ratio.
    let web_gb = [3.0, 10.0, 14.0, 27.0, 44.0, 72.0];
    let tpch_gb = [9.8, 19.7, 29.7, 49.6, 99.8, 150.4];

    // Every run of every program is independent, so the whole binary is
    // one batch: per program and dataset, 5 regular runs then the ITask
    // run, followed by the HJ/GR upper-bound probes.
    let progs: Vec<&str> = ["wc", "hs", "ii", "hj", "gr"]
        .into_iter()
        .filter(|p| want(p))
        .collect();
    let mut specs: Vec<RunSpec<Cell>> = Vec::new();
    for &p in &progs {
        let (n_sets, labels): (usize, Vec<&str>) = match p {
            "wc" | "hs" | "ii" => (n_web, webmap.iter().map(|s| s.label()).collect()),
            _ => (n_tpch, tpch.iter().map(|s| s.label()).collect()),
        };
        for d in 0..n_sets {
            for &t in &THREADS {
                let label = format!("table6 {p} {} reg t{t}", labels[d]);
                let (webmap, tpch) = (&webmap, &tpch);
                specs.push(sweep::spec(label, move || match p {
                    "wc" => Cell::from_summary(&wc::run_regular(webmap[d], &params(t))),
                    "hs" => Cell::from_summary(&hs::run_regular(webmap[d], &params(t))),
                    "ii" => Cell::from_summary(&ii::run_regular(webmap[d], &params(t))),
                    "hj" => Cell::from_summary(&hj::run_regular(tpch[d], &params(t))),
                    _ => Cell::from_summary(&gr::run_regular(tpch[d], &params(t))),
                }));
            }
            let label = format!("table6 {p} {} itask", labels[d]);
            let (webmap, tpch) = (&webmap, &tpch);
            specs.push(sweep::spec(label, move || match p {
                "wc" => Cell::from_summary(&wc::run_itask(webmap[d], &params(8))),
                "hs" => Cell::from_summary(&hs::run_itask(webmap[d], &params(8))),
                "ii" => Cell::from_summary(&ii::run_itask(webmap[d], &params(8))),
                "hj" => Cell::from_summary(&hj::run_itask(tpch[d], &params(8))),
                _ => Cell::from_summary(&gr::run_itask(tpch[d], &params(8))),
            }));
        }
        if p == "hj" {
            specs.push(sweep::spec("table6 hj probe X600", || {
                Cell::from_summary(&hj::run_itask(TpchScale::X600, &params(8)))
            }));
        }
        if p == "gr" {
            specs.push(sweep::spec("table6 gr probe X250", || {
                Cell::from_summary(&gr::run_itask(TpchScale::X250, &params(8)))
            }));
        }
    }
    let out = sweep::run_all(jobs, specs);
    log.absorb(&out);
    let mut cells = out.into_iter().map(|o| o.result);

    let mut rows = Vec::new();
    let mut add = |name: &str, s: Summary, sizes: &[f64], itask_cap_gb: Option<f64>| {
        let reg_gb = s.reg_largest.map(|d| sizes[d]).unwrap_or(0.0);
        // The ITask versions processed every tested dataset; the paper
        // probes further (600x for HJ, 250x for GR).
        let it_gb = itask_cap_gb
            .or(s.itask_largest.map(|d| sizes[d]))
            .unwrap_or(0.0);
        let scal = if reg_gb > 0.0 {
            it_gb / reg_gb
        } else {
            f64::NAN
        };
        rows.push(vec![
            name.to_string(),
            format!("{}/{}", s.time_wins, s.datasets),
            format!("{:.1}%", mean(&s.time_savings) * 100.0),
            format!("{}/{}", s.heap_wins, s.datasets),
            format!("{:.1}%", mean(&s.heap_savings) * 100.0),
            format!("{:.2}x", scal),
        ]);
    };

    for &p in &progs {
        match p {
            "wc" => {
                let s = summarize(n_web, &mut cells);
                add("WC", s, &web_gb, None);
            }
            "hs" => {
                let s = summarize(n_web, &mut cells);
                add("HS", s, &web_gb, None);
            }
            "ii" => {
                let s = summarize(n_web, &mut cells);
                add("II", s, &web_gb, None);
            }
            "hj" => {
                let s = summarize(n_tpch, &mut cells);
                let probe = cells.next().expect("hj probe cell");
                add("HJ", s, &tpch_gb, probe.ok.then_some(600.0 * 9.8 / 10.0));
            }
            _ => {
                let s = summarize(n_tpch, &mut cells);
                let probe = cells.next().expect("gr probe cell");
                add("GR", s, &tpch_gb, probe.ok.then_some(250.0 * 9.8 / 10.0));
            }
        }
    }

    let header = cols(&[
        "Name",
        "#TS",
        "%TS (mean)",
        "#HS",
        "%HS (mean)",
        "Scalability",
    ]);
    print_table("Table 6: ITask vs regular summary", &header, &rows);
    log.finish();
}
