//! §6.1's headline: all 13 reproduced StackOverflow problems survive
//! with ITask. The five detailed ones (Table 1) plus the other eight,
//! each under its reported (crashing) configuration.
//!
//! Usage: `survival13 [--jobs N] [--five-only|--eight-only]`.

use apps::hadoop_apps::{crp, iib, imc, more_problems, msa, wcm};
use itask_bench::sweep::{self, RunSpec};
use itask_bench::{cols, print_table};
use simcore::SCALE;

const SEED: u64 = 42;

fn secs(s: f64) -> String {
    format!("{s:.0}s")
}

fn crash_col<T>(crash: &apps::RunSummary<T>, attempts: u32) -> String {
    if crash.ok() {
        "no crash (!)".into()
    } else {
        format!("crash @{} ({attempts} att.)", secs(crash.paper_seconds()))
    }
}

fn survive_col<T>(survive: &apps::RunSummary<T>) -> String {
    if survive.ok() {
        format!("survives, {}", secs(survive.paper_seconds()))
    } else {
        format!(
            "FAILED ({})",
            survive
                .result
                .as_ref()
                .err()
                .map(|e| e.to_string())
                .unwrap_or_default()
        )
    }
}

/// The two timed columns of one problem row, as parallel jobs.
macro_rules! five_specs {
    ($specs:ident, $key:expr, $module:ident) => {{
        $specs.push(sweep::spec(concat!("survival13 ", $key, " ctime"), || {
            let (c, a) = $module::run_ctime(SEED);
            crash_col(&c, a)
        }));
        $specs.push(sweep::spec(concat!("survival13 ", $key, " itask"), || {
            survive_col(&$module::run_itask(SEED))
        }));
    }};
}

fn main() {
    let mut h = sweep::harness();
    let jobs = h.jobs;
    let five = !h.flag("--eight-only");
    let eight = !h.flag("--five-only");
    let mut log = h.log("survival13");

    // The five detailed problems contribute (crash, survive) column
    // pairs; each of the other eight renders its whole row (its crash
    // and survive runs share the generated dataset).
    let five_meta: [(&str, &str); 5] = [
        ("MSA [13]", "map-side aggregation"),
        ("IMC [16]", "in-map combiner"),
        ("IIB [8]", "inverted-index building"),
        ("WCM [15]", "co-occurrence matrix"),
        ("CRP [10]", "review lemmatizer"),
    ];
    let mut five_specs: Vec<RunSpec<String>> = Vec::new();
    if five {
        five_specs!(five_specs, "MSA", msa);
        five_specs!(five_specs, "IMC", imc);
        five_specs!(five_specs, "IIB", iib);
        five_specs!(five_specs, "WCM", wcm);
        five_specs!(five_specs, "CRP", crp);
    }
    let mut eight_specs: Vec<RunSpec<Vec<String>>> = Vec::new();
    if eight {
        type Mk = fn(u64) -> more_problems::Survival;
        let mks: [(&str, Mk); 8] = [
            ("sba", more_problems::sba),
            ("lsb", more_problems::lsb),
            ("wpp", more_problems::wpp),
            ("fav", more_problems::fav),
            ("spi", more_problems::spi),
            ("hjd", more_problems::hjd),
            ("tfr", more_problems::tfr),
            ("rhm", more_problems::rhm),
        ];
        for (key, mk) in mks {
            eight_specs.push(sweep::spec(format!("survival13 {key}"), move || {
                let s = mk(SEED);
                vec![
                    s.name.to_string(),
                    s.story.to_string(),
                    crash_col(&s.crash, s.attempts),
                    survive_col(&s.survive),
                ]
            }));
        }
    }

    let mut rows = Vec::new();
    if five {
        let out = sweep::run_all(jobs, five_specs);
        log.absorb(&out);
        let mut cells = out.into_iter().map(|o| o.result);
        for (name, story) in five_meta {
            rows.push(vec![
                name.to_string(),
                story.to_string(),
                cells.next().expect("crash col"),
                cells.next().expect("survive col"),
            ]);
        }
    }
    if eight {
        let out = sweep::run_all(jobs, eight_specs);
        log.absorb(&out);
        rows.extend(out.into_iter().map(|o| o.result));
    }

    let header = cols(&[
        "problem",
        "root cause",
        "regular (reported config)",
        "ITask (same config)",
    ]);
    print_table(
        &format!(
            "All 13 reproduced problems (seed {SEED}, times x{} paper-equivalent)",
            SCALE
        ),
        &header,
        &rows,
    );
    log.finish();
}
