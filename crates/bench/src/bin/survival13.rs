//! §6.1's headline: all 13 reproduced StackOverflow problems survive
//! with ITask. The five detailed ones (Table 1) plus the other eight,
//! each under its reported (crashing) configuration.
//!
//! Usage: `survival13 [--five-only|--eight-only]`.

use apps::hadoop_apps::{crp, iib, imc, more_problems, msa, wcm};
use itask_bench::{cols, print_table};
use simcore::SCALE;

const SEED: u64 = 42;

fn row<T, U>(
    name: &str,
    story: &str,
    crash: &apps::RunSummary<T>,
    attempts: u32,
    survive: &apps::RunSummary<U>,
) -> Vec<String> {
    let secs = |s: f64| format!("{s:.0}s");
    vec![
        name.to_string(),
        story.to_string(),
        if crash.ok() {
            "no crash (!)".into()
        } else {
            format!("crash @{} ({attempts} att.)", secs(crash.paper_seconds()))
        },
        if survive.ok() {
            format!("survives, {}", secs(survive.paper_seconds()))
        } else {
            format!(
                "FAILED ({})",
                survive
                    .result
                    .as_ref()
                    .err()
                    .map(|e| e.to_string())
                    .unwrap_or_default()
            )
        },
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let five = !args.iter().any(|a| a == "--eight-only");
    let eight = !args.iter().any(|a| a == "--five-only");
    let mut rows = Vec::new();

    if five {
        let (c, a) = msa::run_ctime(SEED);
        rows.push(row(
            "MSA [13]",
            "map-side aggregation",
            &c,
            a,
            &msa::run_itask(SEED),
        ));
        let (c, a) = imc::run_ctime(SEED);
        rows.push(row(
            "IMC [16]",
            "in-map combiner",
            &c,
            a,
            &imc::run_itask(SEED),
        ));
        let (c, a) = iib::run_ctime(SEED);
        rows.push(row(
            "IIB [8]",
            "inverted-index building",
            &c,
            a,
            &iib::run_itask(SEED),
        ));
        let (c, a) = wcm::run_ctime(SEED);
        rows.push(row(
            "WCM [15]",
            "co-occurrence matrix",
            &c,
            a,
            &wcm::run_itask(SEED),
        ));
        let (c, a) = crp::run_ctime(SEED);
        rows.push(row(
            "CRP [10]",
            "review lemmatizer",
            &c,
            a,
            &crp::run_itask(SEED),
        ));
    }
    if eight {
        for s in more_problems::all(SEED) {
            rows.push(row(s.name, s.story, &s.crash, s.attempts, &s.survive));
        }
    }

    let header = cols(&[
        "problem",
        "root cause",
        "regular (reported config)",
        "ITask (same config)",
    ]);
    print_table(
        &format!(
            "All 13 reproduced problems (seed {SEED}, times x{} paper-equivalent)",
            SCALE
        ),
        &header,
        &rows,
    );
}
