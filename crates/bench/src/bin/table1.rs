//! Table 1: the five reproduced Hadoop problems — CTime (time until the
//! job dies under the reported configuration, YARN retries included),
//! PTime (the StackOverflow-recommended fix), ITime (the ITask version
//! under the reported configuration).
//!
//! Usage: `table1 [--jobs N] [problem ...]`, problems ∈ {msa, imc, iib, wcm, crp}.

use apps::hadoop_apps::{crp, iib, imc, msa, wcm};
use apps::RunSummary;
use itask_bench::sweep::{self, RunSpec};
use itask_bench::{cols, print_table};
use simcore::SCALE;

const SEED: u64 = 42;

fn secs<T>(s: &RunSummary<T>) -> f64 {
    s.report.elapsed.as_secs_f64() * SCALE as f64
}

fn show_crash<T>(s: &RunSummary<T>, attempts: u32) -> String {
    if s.ok() {
        format!("{:.0}s (no crash!)", secs(s))
    } else {
        format!("{:.0}s ({} attempts)", secs(s), attempts)
    }
}

fn show_ok<T>(s: &RunSummary<T>) -> String {
    if s.ok() {
        format!("{:.0}s", secs(s))
    } else {
        format!("FAILED@{:.0}s", secs(s))
    }
}

fn config_col(cfg: &hadoop::HadoopConfig) -> String {
    format!(
        "MH={}K RH={}K MM={} MR={}",
        cfg.map_heap.as_u64() / 1024,
        cfg.reduce_heap.as_u64() / 1024,
        cfg.max_mappers,
        cfg.max_reducers
    )
}

/// The three timed cells of one problem row, as independent sweep jobs.
macro_rules! problem_specs {
    ($specs:ident, $name:expr, $module:ident) => {{
        $specs.push(sweep::spec(concat!("table1 ", $name, " ctime"), || {
            let (s, attempts) = $module::run_ctime(SEED);
            show_crash(&s, attempts)
        }));
        $specs.push(sweep::spec(concat!("table1 ", $name, " ptime"), || {
            let (s, _) = $module::run_tuned(SEED);
            show_ok(&s)
        }));
        $specs.push(sweep::spec(concat!("table1 ", $name, " itime"), || {
            show_ok(&$module::run_itask(SEED))
        }));
    }};
}

fn main() {
    let h = sweep::harness();
    let jobs = h.jobs;
    let args = h.args.clone();
    let want = |p: &str| args.is_empty() || args.iter().any(|a| a == p);
    let mut log = h.log("table1");

    // (Name, Data, Config) in table order; each contributes 3 jobs.
    let mut meta: Vec<(&str, &str, String)> = Vec::new();
    let mut specs: Vec<RunSpec<String>> = Vec::new();
    if want("msa") {
        meta.push((
            "MSA",
            "StackOverflow FD 29GB",
            config_col(&msa::table1_config()),
        ));
        problem_specs!(specs, "MSA", msa);
    }
    if want("imc") {
        meta.push((
            "IMC",
            "Wikipedia FD 49GB",
            config_col(&imc::table1_config()),
        ));
        problem_specs!(specs, "IMC", imc);
    }
    if want("iib") {
        meta.push((
            "IIB",
            "Wikipedia FD 49GB",
            config_col(&iib::table1_config()),
        ));
        problem_specs!(specs, "IIB", iib);
    }
    if want("wcm") {
        meta.push((
            "WCM",
            "Wikipedia FD 49GB",
            config_col(&wcm::table1_config()),
        ));
        problem_specs!(specs, "WCM", wcm);
    }
    if want("crp") {
        meta.push(("CRP", "Wikipedia SP 5GB", config_col(&crp::table1_config())));
        problem_specs!(specs, "CRP", crp);
    }

    let out = sweep::run_all(jobs, specs);
    log.absorb(&out);
    let mut cells = out.into_iter().map(|o| o.result);

    let table: Vec<Vec<String>> = meta
        .into_iter()
        .map(|(name, data, config)| {
            vec![
                name.into(),
                data.into(),
                config,
                cells.next().expect("ctime cell"),
                cells.next().expect("ptime cell"),
                cells.next().expect("itime cell"),
            ]
        })
        .collect();
    let header = cols(&[
        "Name",
        "Data",
        "Config (paper MB)",
        "CTime",
        "PTime",
        "ITime",
    ]);
    print_table(
        "Table 1: Hadoop problems — crash / tuned / ITask times",
        &header,
        &table,
    );
    log.finish();
}
