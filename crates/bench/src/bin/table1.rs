//! Table 1: the five reproduced Hadoop problems — CTime (time until the
//! job dies under the reported configuration, YARN retries included),
//! PTime (the StackOverflow-recommended fix), ITime (the ITask version
//! under the reported configuration).
//!
//! Usage: `table1 [problem ...]`, problems ∈ {msa, imc, iib, wcm, crp}.

use apps::hadoop_apps::{crp, iib, imc, msa, wcm};
use apps::RunSummary;
use itask_bench::{cols, print_table};
use simcore::SCALE;

const SEED: u64 = 42;

struct ProblemRow {
    name: &'static str,
    data: &'static str,
    config: String,
    ctime: String,
    ptime: String,
    itime: String,
}

fn secs<T>(s: &RunSummary<T>) -> f64 {
    s.report.elapsed.as_secs_f64() * SCALE as f64
}

fn show_crash<T>(s: &RunSummary<T>, attempts: u32) -> String {
    if s.ok() {
        format!("{:.0}s (no crash!)", secs(s))
    } else {
        format!("{:.0}s ({} attempts)", secs(s), attempts)
    }
}

fn show_ok<T>(s: &RunSummary<T>) -> String {
    if s.ok() {
        format!("{:.0}s", secs(s))
    } else {
        format!("FAILED@{:.0}s", secs(s))
    }
}

fn row<T, U, V>(
    name: &'static str,
    data: &'static str,
    cfg: &hadoop::HadoopConfig,
    ctime: (RunSummary<T>, u32),
    ptime: (RunSummary<U>, u32),
    itime: RunSummary<V>,
) -> ProblemRow {
    ProblemRow {
        name,
        data,
        config: format!(
            "MH={}K RH={}K MM={} MR={}",
            cfg.map_heap.as_u64() / 1024,
            cfg.reduce_heap.as_u64() / 1024,
            cfg.max_mappers,
            cfg.max_reducers
        ),
        ctime: show_crash(&ctime.0, ctime.1),
        ptime: show_ok(&ptime.0),
        itime: show_ok(&itime),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |p: &str| args.is_empty() || args.iter().any(|a| a == p);
    let mut rows: Vec<ProblemRow> = Vec::new();

    if want("msa") {
        rows.push(row(
            "MSA",
            "StackOverflow FD 29GB",
            &msa::table1_config(),
            msa::run_ctime(SEED),
            msa::run_tuned(SEED),
            msa::run_itask(SEED),
        ));
    }
    if want("imc") {
        rows.push(row(
            "IMC",
            "Wikipedia FD 49GB",
            &imc::table1_config(),
            imc::run_ctime(SEED),
            imc::run_tuned(SEED),
            imc::run_itask(SEED),
        ));
    }
    if want("iib") {
        rows.push(row(
            "IIB",
            "Wikipedia FD 49GB",
            &iib::table1_config(),
            iib::run_ctime(SEED),
            iib::run_tuned(SEED),
            iib::run_itask(SEED),
        ));
    }
    if want("wcm") {
        rows.push(row(
            "WCM",
            "Wikipedia FD 49GB",
            &wcm::table1_config(),
            wcm::run_ctime(SEED),
            wcm::run_tuned(SEED),
            wcm::run_itask(SEED),
        ));
    }
    if want("crp") {
        rows.push(row(
            "CRP",
            "Wikipedia SP 5GB",
            &crp::table1_config(),
            crp::run_ctime(SEED),
            crp::run_tuned(SEED),
            crp::run_itask(SEED),
        ));
    }

    let header = cols(&[
        "Name",
        "Data",
        "Config (paper MB)",
        "CTime",
        "PTime",
        "ITime",
    ]);
    let table: Vec<Vec<String>> = rows
        .into_iter()
        .map(|r| {
            vec![
                r.name.into(),
                r.data.into(),
                r.config,
                r.ctime,
                r.ptime,
                r.itime,
            ]
        })
        .collect();
    print_table(
        "Table 1: Hadoop problems — crash / tuned / ITask times",
        &header,
        &table,
    );
}
