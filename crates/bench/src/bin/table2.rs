//! Table 2: memory-savings breakdown of the ITask runs of the five
//! Hadoop problems — bytes reclaimed from processed input, final
//! results, intermediate results, and lazy serialization.
//!
//! Usage: `table2 [--jobs N] [problem ...]`.

use apps::hadoop_apps::{crp, iib, imc, msa, wcm};
use apps::RunSummary;
use itask_bench::sweep::{self, RunSpec};
use itask_bench::{cols, print_table};
use simcore::{ByteSize, SCALE};

const SEED: u64 = 42;

fn fmt_paper(bytes: f64) -> String {
    // Report at paper scale: simulated bytes × 1024.
    format!("{}", ByteSize((bytes * SCALE as f64) as u64))
}

fn row<T>(name: &str, s: &RunSummary<T>) -> Vec<String> {
    vec![
        name.to_string(),
        fmt_paper(s.report.counter("reclaim.processed_input")),
        fmt_paper(s.report.counter("reclaim.final_results")),
        fmt_paper(s.report.counter("reclaim.intermediate_results")),
        fmt_paper(s.report.counter("reclaim.lazy_serialized")),
        if s.ok() { "ok".into() } else { "FAILED".into() },
    ]
}

fn main() {
    let h = sweep::harness();
    let jobs = h.jobs;
    let args = h.args.clone();
    let want = |p: &str| args.is_empty() || args.iter().any(|a| a == p);
    let mut log = h.log("table2");

    let mut specs: Vec<RunSpec<Vec<String>>> = Vec::new();
    if want("msa") {
        specs.push(sweep::spec("table2 MSA itask", || {
            row("MSA", &msa::run_itask(SEED))
        }));
    }
    if want("imc") {
        specs.push(sweep::spec("table2 IMC itask", || {
            row("IMC", &imc::run_itask(SEED))
        }));
    }
    if want("iib") {
        specs.push(sweep::spec("table2 IIB itask", || {
            row("IIB", &iib::run_itask(SEED))
        }));
    }
    if want("wcm") {
        specs.push(sweep::spec("table2 WCM itask", || {
            row("WCM", &wcm::run_itask(SEED))
        }));
    }
    if want("crp") {
        specs.push(sweep::spec("table2 CRP itask", || {
            row("CRP", &crp::run_itask(SEED))
        }));
    }
    let out = sweep::run_all(jobs, specs);
    log.absorb(&out);
    let rows: Vec<Vec<String>> = out.into_iter().map(|o| o.result).collect();

    let header = cols(&[
        "Name",
        "Processed Input",
        "Final Results",
        "Intermediate Results",
        "Lazy Serialization",
        "outcome",
    ]);
    print_table(
        "Table 2: ITask memory-savings breakdown (paper-equivalent bytes)",
        &header,
        &rows,
    );
    log.finish();
}
