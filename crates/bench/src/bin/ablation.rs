//! §6.1's design ablation: ITask proper vs (1) the naïve kill-restart
//! baseline (terminate a task and reprocess the partition from scratch)
//! and (2) random victim selection instead of the priority rules. The
//! paper reports ITask up to 5x faster than the naïve techniques.
//!
//! Usage: `ablation [--jobs N]`.

use std::rc::Rc;

use apps::agg::itask_factories;
use apps::hyracks_apps::wc::WcSpec;
use apps::hyracks_apps::HyracksParams;
use itask_bench::sweep;
#[allow(unused_imports)]
use itask_bench::{cols, print_table, Cell};
use itask_core::{
    InterruptMode, IrsConfig, ManagerConfig, MonitorConfig, SerializeMode, VictimPolicy,
};
use simcore::ByteSize;
use workloads::webmap::WebmapSize;

fn run_with(
    size: WebmapSize,
    heap_mib: u64,
    mode: InterruptMode,
    policy: VictimPolicy,
    ser: SerializeMode,
    hover_pct: u8,
) -> apps::RunSummary<apps::OutKv> {
    // Heaps chosen per dataset so that scheduler interrupts genuinely
    // fire: under milder pressure the proactive serialization machinery
    // absorbs everything and the interrupt policies never run.
    let params = HyracksParams {
        heap_per_node: ByteSize::mib(heap_mib),
        ..HyracksParams::default()
    };
    let mut cluster = params.cluster();
    let spec = hyracks::ItaskJobSpec {
        name: "wc-ablation".into(),
        irs: IrsConfig {
            max_parallelism: params.cores,
            victim_policy: policy,
            interrupt_mode: mode,
            manager: ManagerConfig {
                mode: ser,
                ..ManagerConfig::default()
            },
            monitor: MonitorConfig {
                serialize_free_pct: hover_pct,
                ..MonitorConfig::default()
            },
            ..IrsConfig::default()
        },
        granularity: params.granularity,
        buckets: params.buckets(),
    };
    let factories = itask_factories(WcSpec, params.buckets());
    let inputs = apps::hyracks_apps::webmap_inputs(size, &params, |r| r);
    let (report, result) = hyracks::run_itask::<
        workloads::webmap::AdjRecord,
        apps::CountMid,
        apps::OutKv,
    >(&mut cluster, inputs, &spec, &factories);
    apps::RunSummary { report, result }
}

/// The five ablation configurations, in column order.
const CONFIGS: [(InterruptMode, VictimPolicy, SerializeMode, u8, &str); 5] = [
    (
        InterruptMode::Cooperative,
        VictimPolicy::Rules,
        SerializeMode::Disk,
        40,
        "full",
    ),
    (
        InterruptMode::KillRestart,
        VictimPolicy::Rules,
        SerializeMode::Disk,
        40,
        "kill",
    ),
    (
        InterruptMode::Cooperative,
        VictimPolicy::Random,
        SerializeMode::Disk,
        40,
        "random",
    ),
    (
        InterruptMode::Cooperative,
        VictimPolicy::Rules,
        SerializeMode::MemoryBytes,
        40,
        "membytes",
    ),
    // The paper's literal pseudocode serializes only down to M%:
    // no proactive hover, no write-behind headroom.
    (
        InterruptMode::Cooperative,
        VictimPolicy::Rules,
        SerializeMode::Disk,
        10,
        "lazy",
    ),
];

fn main() {
    let h = sweep::harness();
    let jobs = h.jobs;
    let mut log = h.log("ablation");

    let sizes = [
        (WebmapSize::G10, 3u64),
        (WebmapSize::G14, 4),
        (WebmapSize::G72, 12),
    ];
    let header = cols(&[
        "dataset",
        "ITask (rules, disk)",
        "kill-restart",
        "random victim",
        "in-memory bytes",
        "hover=M% (lazy)",
        "vs kill",
        "vs random",
    ]);

    // 3 datasets × 5 configurations, all independent.
    let mut specs: Vec<sweep::RunSpec<Cell>> = Vec::new();
    for (size, heap) in sizes {
        for (mode, policy, ser, hover, key) in CONFIGS {
            specs.push(sweep::spec(
                format!("ablation {} {key}", size.label()),
                move || Cell::from_summary(&run_with(size, heap, mode, policy, ser, hover)),
            ));
        }
    }
    let out = sweep::run_all(jobs, specs);
    log.absorb(&out);
    let mut cells = out.into_iter().map(|o| o.result);

    let mut rows = Vec::new();
    for (size, heap) in sizes {
        let full = cells.next().expect("full cell");
        let kill = cells.next().expect("kill cell");
        let random = cells.next().expect("random cell");
        let membytes = cells.next().expect("membytes cell");
        let lazy = cells.next().expect("lazy cell");
        let speed = |other: &Cell| {
            if full.ok && other.ok {
                format!(
                    "{:.2}x",
                    other.elapsed.as_secs_f64() / full.elapsed.as_secs_f64()
                )
            } else if full.ok {
                "inf (baseline failed)".into()
            } else {
                "-".into()
            }
        };
        rows.push(vec![
            format!("{} ({}GB heap)", size.label(), heap),
            full.show(),
            kill.show(),
            random.show(),
            membytes.show(),
            lazy.show(),
            speed(&kill),
            speed(&random),
        ]);
        let _ = Rc::new(());
    }
    print_table(
        "Ablation (§6.1 + §5.3): ITask vs naive interrupt designs, and disk vs in-memory serialization (WC)",
        &header,
        &rows,
    );
    log.finish();
}
