//! Multi-tenant service table: ITask vs regular under rising tenant
//! counts, plus an admission-policy ablation.
//!
//! The headline table is the service-operator version of the paper's
//! scalability claim: on shared heaps, the regular engine starts losing
//! jobs to OMEs as tenants co-locate, while the ITask engine absorbs
//! the same offered load by interrupting and spilling — at higher but
//! bounded latency. The second table fixes the tenant count and swaps
//! admission policies, showing memory-aware admission trading queue
//! wait for OME avoidance on the engine that cannot protect itself.
//!
//! Usage: `service [--jobs N] [--quick] [--scale]`. Output is
//! deterministic: every cell derives from one seeded virtual-time run,
//! assembled in spec order regardless of `--jobs`.
//!
//! `--scale` swaps both tables for the million-tenant mode: a lazily
//! synthesized population (10^5 tenants, 10^4 with `--quick`) drives
//! sharded admission (4 shards, indexed O(log n) queues, per-shard
//! memory gating, bounded-memory shard sketches). Table 1 sweeps load
//! shapes (steady / diurnal / bursty) under weighted-fair admission;
//! table 2 holds the shape steady and sweeps admission policies.

use itask_bench::sweep::{self, SweepLog};
use itask_bench::{cols, print_table};
use simcore::SimDuration;
use simserve::{
    EngineKind, LoadShape, PolicyKind, RetryPolicy, ScaleSpec, Service, ServiceConfig,
    ServiceReport, TenantModel, WeightRule,
};

const SEED: u64 = 42;

fn run_engine(engine: EngineKind, tenants: u32) -> ServiceReport {
    Service::new(ServiceConfig::standard(engine, tenants, SEED)).run()
}

fn run_policy(policy: PolicyKind, tenants: u32) -> ServiceReport {
    let mut cfg = ServiceConfig::standard(EngineKind::Regular, tenants, SEED);
    cfg.admission.policy = policy;
    Service::new(cfg).run()
}

/// Headline: both engines across rising tenant counts.
fn tenant_sweep(jobs: usize, log: &mut SweepLog, counts: &[u32]) {
    let mut specs = Vec::new();
    for &t in counts {
        for engine in [EngineKind::Regular, EngineKind::Itask] {
            specs.push(sweep::spec(
                format!("service t{t} {}", engine.label()),
                move || run_engine(engine, t),
            ));
        }
    }
    let out = sweep::run_all(jobs, specs);
    log.absorb(&out);
    let mut runs = out.into_iter().map(|o| o.result);

    let mut rows = Vec::new();
    for &t in counts {
        let reg = runs.next().expect("regular run");
        let it = runs.next().expect("itask run");
        let (rc, ic) = (reg.summary_cells(), it.summary_cells());
        rows.push(vec![
            t.to_string(),
            rc[0].clone(),
            rc[1].clone(),
            rc[4].clone(),
            rc[6].clone(),
            ic[0].clone(),
            ic[1].clone(),
            ic[4].clone(),
            ic[6].clone(),
        ]);
    }
    print_table(
        "Multi-tenant service: regular vs ITask (4 nodes, shared heaps, FIFO admission)",
        &cols(&[
            "tenants",
            "reg done",
            "reg OMEs",
            "reg p50",
            "reg p99",
            "itask done",
            "itask OMEs",
            "itask p50",
            "itask p99",
        ]),
        &rows,
    );
}

/// Ablation: admission policies protecting the regular engine.
fn policy_sweep(jobs: usize, log: &mut SweepLog, tenants: u32) {
    let policies = [
        PolicyKind::Fifo,
        PolicyKind::WeightedFair,
        PolicyKind::MemoryAware,
    ];
    let specs = policies
        .iter()
        .map(|&p| {
            sweep::spec(
                format!("service policy {} t{tenants}", p.label()),
                move || run_policy(p, tenants),
            )
        })
        .collect();
    let out = sweep::run_all(jobs, specs);
    log.absorb(&out);
    let mut runs = out.into_iter().map(|o| o.result);

    let mut rows = Vec::new();
    for p in policies {
        let r = runs.next().expect("policy run");
        let c = r.summary_cells();
        rows.push(vec![
            p.label().to_string(),
            c[0].clone(),
            c[1].clone(),
            c[2].clone(),
            c[3].clone(),
            c[4].clone(),
            c[7].clone(),
        ]);
    }
    print_table(
        &format!(
            "Admission-policy ablation: regular engine, {tenants} tenants (OMEs vs queue wait)"
        ),
        &cols(&[
            "policy",
            "done",
            "OMEs",
            "retries",
            "failed",
            "p50",
            "qwait p95",
        ]),
        &rows,
    );
}

/// The million-tenant service configuration: ITask engine, weighted
/// shares from a procedural rule (every 10th tenant is premium), tight
/// submit deadlines, bounded per-tenant queues, and budgeted retries —
/// an overloaded shed-heavy regime where the admission plane itself is
/// the system under test.
fn run_scale(
    policy: PolicyKind,
    shape: LoadShape,
    population: u32,
    mean_gap: SimDuration,
) -> ServiceReport {
    let mut cfg = ServiceConfig::standard(EngineKind::Itask, 0, SEED);
    cfg.admission.policy = policy;
    cfg.admission.max_active = 2; // per shard
    cfg.admission.queue_cap = Some(2);
    cfg.retry = RetryPolicy::budgeted();
    let mut model = TenantModel::uniform(population, mean_gap);
    model.shape = shape;
    model.deadline = Some(SimDuration::from_millis(4));
    model.weights = WeightRule {
        premium_every: 10,
        premium_weight: 8,
    };
    cfg.scale = Some(ScaleSpec {
        model,
        admission_shards: 4,
    });
    Service::new(cfg).run()
}

/// Stable cells for the scale tables:
/// `[done/submitted, shed, peak queued, p50, p99, qwait p95]`.
fn scale_cells(r: &ServiceReport) -> Vec<String> {
    let c = r.summary_cells();
    vec![
        c[0].clone(),
        r.total_shed().to_string(),
        r.peak_queued.to_string(),
        c[4].clone(),
        c[6].clone(),
        c[7].clone(),
    ]
}

const SCALE_COLS: [&str; 7] = [
    "", // row label, set per table
    "done",
    "shed",
    "peak q",
    "p50",
    "p99",
    "qwait p95",
];

/// Scale table 1: load shapes under weighted-fair admission.
fn scale_shape_sweep(
    jobs: usize,
    log: &mut SweepLog,
    population: u32,
    mean_gap: SimDuration,
    shapes: &[LoadShape],
) {
    let specs = shapes
        .iter()
        .map(|&s| {
            sweep::spec(format!("scale shape {}", s.label()), move || {
                run_scale(PolicyKind::WeightedFair, s, population, mean_gap)
            })
        })
        .collect();
    let out = sweep::run_all(jobs, specs);
    log.absorb(&out);
    let rows: Vec<Vec<String>> = out
        .into_iter()
        .zip(shapes)
        .map(|(o, s)| {
            let mut row = vec![s.label().to_string()];
            row.extend(scale_cells(&o.result));
            row
        })
        .collect();
    let mut headers = SCALE_COLS;
    headers[0] = "shape";
    print_table(
        &format!("Scale service: load shapes at {population} tenants (wfair, 4 admission shards)"),
        &cols(&headers),
        &rows,
    );
}

/// Scale table 2: admission policies at steady load.
fn scale_policy_sweep(jobs: usize, log: &mut SweepLog, population: u32, mean_gap: SimDuration) {
    let policies = [
        PolicyKind::Fifo,
        PolicyKind::WeightedFair,
        PolicyKind::MemoryAware,
    ];
    let specs = policies
        .iter()
        .map(|&p| {
            sweep::spec(format!("scale policy {}", p.label()), move || {
                run_scale(p, LoadShape::Steady, population, mean_gap)
            })
        })
        .collect();
    let out = sweep::run_all(jobs, specs);
    log.absorb(&out);
    let rows: Vec<Vec<String>> = out
        .into_iter()
        .zip(policies)
        .map(|(o, p)| {
            let mut row = vec![p.label().to_string()];
            row.extend(scale_cells(&o.result));
            row
        })
        .collect();
    let mut headers = SCALE_COLS;
    headers[0] = "policy";
    print_table(
        &format!("Scale service: admission policies at {population} tenants (steady load)"),
        &cols(&headers),
        &rows,
    );
}

fn main() {
    let mut h = sweep::harness();
    let jobs = h.jobs;
    let scale = h.flag("--scale");
    let quick = h.flag("--quick");
    let mut log = h.log(if scale { "service-scale" } else { "service" });
    if scale {
        // Quick keeps the population and offered load CI-sized; full
        // mode is the 10^5-tenant, ~500k jobs/s regime of
        // bench_results/BENCH_scale.txt.
        let (population, mean_gap) = if quick {
            (10_000, SimDuration::from_micros(40))
        } else {
            (100_000, SimDuration::from_micros(2))
        };
        let shapes = [
            LoadShape::Steady,
            LoadShape::Diurnal {
                period: SimDuration::from_millis(10),
                amplitude_pm: 600,
            },
            LoadShape::Bursty {
                period: SimDuration::from_millis(8),
                burst_len: SimDuration::from_millis(2),
                mult_pm: 4_000,
            },
        ];
        scale_shape_sweep(jobs, &mut log, population, mean_gap, &shapes);
        scale_policy_sweep(jobs, &mut log, population, mean_gap);
    } else {
        let counts: &[u32] = if quick {
            &[1, 2, 3]
        } else {
            &[1, 2, 3, 4, 6, 8]
        };
        tenant_sweep(jobs, &mut log, counts);
        policy_sweep(jobs, &mut log, if quick { 3 } else { 6 });
    }
    log.finish();
}
