//! Multi-tenant service table: ITask vs regular under rising tenant
//! counts, plus an admission-policy ablation.
//!
//! The headline table is the service-operator version of the paper's
//! scalability claim: on shared heaps, the regular engine starts losing
//! jobs to OMEs as tenants co-locate, while the ITask engine absorbs
//! the same offered load by interrupting and spilling — at higher but
//! bounded latency. The second table fixes the tenant count and swaps
//! admission policies, showing memory-aware admission trading queue
//! wait for OME avoidance on the engine that cannot protect itself.
//!
//! Usage: `service [--jobs N] [--quick]`. Output is deterministic:
//! every cell derives from one seeded virtual-time run, assembled in
//! spec order regardless of `--jobs`.

use itask_bench::sweep::{self, SweepLog};
use itask_bench::{cols, print_table};
use simserve::{EngineKind, PolicyKind, Service, ServiceConfig, ServiceReport};

const SEED: u64 = 42;

fn run_engine(engine: EngineKind, tenants: u32) -> ServiceReport {
    Service::new(ServiceConfig::standard(engine, tenants, SEED)).run()
}

fn run_policy(policy: PolicyKind, tenants: u32) -> ServiceReport {
    let mut cfg = ServiceConfig::standard(EngineKind::Regular, tenants, SEED);
    cfg.admission.policy = policy;
    Service::new(cfg).run()
}

/// Headline: both engines across rising tenant counts.
fn tenant_sweep(jobs: usize, log: &mut SweepLog, counts: &[u32]) {
    let mut specs = Vec::new();
    for &t in counts {
        for engine in [EngineKind::Regular, EngineKind::Itask] {
            specs.push(sweep::spec(
                format!("service t{t} {}", engine.label()),
                move || run_engine(engine, t),
            ));
        }
    }
    let out = sweep::run_all(jobs, specs);
    log.absorb(&out);
    let mut runs = out.into_iter().map(|o| o.result);

    let mut rows = Vec::new();
    for &t in counts {
        let reg = runs.next().expect("regular run");
        let it = runs.next().expect("itask run");
        let (rc, ic) = (reg.summary_cells(), it.summary_cells());
        rows.push(vec![
            t.to_string(),
            rc[0].clone(),
            rc[1].clone(),
            rc[4].clone(),
            rc[6].clone(),
            ic[0].clone(),
            ic[1].clone(),
            ic[4].clone(),
            ic[6].clone(),
        ]);
    }
    print_table(
        "Multi-tenant service: regular vs ITask (4 nodes, shared heaps, FIFO admission)",
        &cols(&[
            "tenants",
            "reg done",
            "reg OMEs",
            "reg p50",
            "reg p99",
            "itask done",
            "itask OMEs",
            "itask p50",
            "itask p99",
        ]),
        &rows,
    );
}

/// Ablation: admission policies protecting the regular engine.
fn policy_sweep(jobs: usize, log: &mut SweepLog, tenants: u32) {
    let policies = [
        PolicyKind::Fifo,
        PolicyKind::WeightedFair,
        PolicyKind::MemoryAware,
    ];
    let specs = policies
        .iter()
        .map(|&p| {
            sweep::spec(
                format!("service policy {} t{tenants}", p.label()),
                move || run_policy(p, tenants),
            )
        })
        .collect();
    let out = sweep::run_all(jobs, specs);
    log.absorb(&out);
    let mut runs = out.into_iter().map(|o| o.result);

    let mut rows = Vec::new();
    for p in policies {
        let r = runs.next().expect("policy run");
        let c = r.summary_cells();
        rows.push(vec![
            p.label().to_string(),
            c[0].clone(),
            c[1].clone(),
            c[2].clone(),
            c[3].clone(),
            c[4].clone(),
            c[7].clone(),
        ]);
    }
    print_table(
        &format!(
            "Admission-policy ablation: regular engine, {tenants} tenants (OMEs vs queue wait)"
        ),
        &cols(&[
            "policy",
            "done",
            "OMEs",
            "retries",
            "failed",
            "p50",
            "qwait p95",
        ]),
        &rows,
    );
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = sweep::take_jobs_flag(&mut args);
    sweep::take_shards_flag(&mut args);
    sweep::take_profile_flag(&mut args);
    let trace = sweep::take_trace_flag(&mut args);
    let quick = args.iter().any(|a| a == "--quick");
    let mut log = SweepLog::new("service", jobs);
    log.set_trace(trace);
    let counts: &[u32] = if quick {
        &[1, 2, 3]
    } else {
        &[1, 2, 3, 4, 6, 8]
    };
    tenant_sweep(jobs, &mut log, counts);
    policy_sweep(jobs, &mut log, if quick { 3 } else { 6 });
    log.finish();
}
