//! SMR tail-latency table: commit-latency quantiles of a GC-sensitive
//! replicated state machine vs heap pressure, regular vs ITask vs
//! ITask with election-aware deflation.
//!
//! Each cell is one deterministic quorum run ([`simsmr::run`]): a
//! leader replicates a log over simnet while every replica's applied
//! state inflates its managed heap, so stop-the-world collections land
//! on the propose → replicate → quorum-ack → commit path. At the high
//! pressure tier the regular runtime's full-GC pause outlasts the
//! election timeout — the quorum deposes a perfectly healthy leader and
//! the tail absorbs both the pause and the view change. The ITask
//! runtimes deflate the applied state (IRS REDUCE) before the cliff;
//! the election-aware variant additionally prices the leader's next
//! full collection against the election timeout every round.
//!
//! Usage: `smr [--jobs N] [--shards N] [--quick] [--trace PATH]`.
//! Output is deterministic and byte-identical at any `--jobs` or
//! `--shards` value.

use itask_bench::sweep::{self, SweepLog};
use itask_bench::{cols, print_table};
use simcore::{FaultPlan, NodeId, SimDuration, SimTime};
use simsmr::{run, RuntimeMode, SmrConfig, SmrOutcome};

const MODES: [RuntimeMode; 3] = [
    RuntimeMode::Regular,
    RuntimeMode::Itask,
    RuntimeMode::ItaskElect,
];
const TIERS: [u64; 3] = [45, 75, 92];

fn ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

fn dur_ms(d: SimDuration) -> String {
    format!("{:.2}", d.as_nanos() as f64 / 1e6)
}

fn config(nodes: usize, mode: RuntimeMode, pressure: u64, quick: bool) -> SmrConfig {
    // `quick` first: `with_pressure` sizes the heap off the log length,
    // so the shortened log must be in place before the tier is applied.
    let cfg = SmrConfig::new(nodes, mode);
    let cfg = if quick { cfg.quick() } else { cfg };
    cfg.with_pressure(pressure)
}

fn check(o: &SmrOutcome, what: &str) {
    if let Err(e) = &o.result {
        panic!("{what} failed: {e}");
    }
    o.check_safety()
        .unwrap_or_else(|e| panic!("{what} violated quorum safety: {e}"));
}

fn row(pressure: u64, o: &SmrOutcome) -> Vec<String> {
    vec![
        format!("{pressure}%"),
        o.mode.label().to_string(),
        ms(o.quantile_ns(0.5)),
        ms(o.quantile_ns(0.99)),
        ms(o.quantile_ns(0.999)),
        ms(o.latency.max()),
        o.view_changes.to_string(),
        o.full_gcs.to_string(),
        o.lugcs.to_string(),
        o.deflations.to_string(),
        dur_ms(o.gc_stall),
        dur_ms(o.elapsed),
    ]
}

/// Headline: commit-latency tail vs heap pressure for one quorum size.
fn pressure_sweep(jobs: usize, log: &mut SweepLog, nodes: usize, quick: bool) {
    let specs = TIERS
        .iter()
        .flat_map(|&p| {
            MODES.iter().map(move |&m| {
                sweep::spec(format!("smr q{nodes} p{p} {}", m.label()), move || {
                    run(&config(nodes, m, p, quick))
                })
            })
        })
        .collect();
    let out = sweep::run_all(jobs, specs);
    log.absorb(&out);
    let outcomes: Vec<SmrOutcome> = out.into_iter().map(|o| o.result).collect();

    let mut rows = Vec::new();
    for (i, o) in outcomes.iter().enumerate() {
        check(o, &format!("smr quorum-{nodes} sweep run {i}"));
        rows.push(row(TIERS[i / MODES.len()], o));
    }
    let entries = if quick { 160 } else { 400 };
    print_table(
        &format!(
            "SMR commit latency vs heap pressure ({nodes}-node quorum, {entries} entries, virtual ms)"
        ),
        &cols(&[
            "live/heap",
            "runtime",
            "p50",
            "p99",
            "p99.9",
            "max",
            "viewchg",
            "fullGC",
            "LUGC",
            "deflate",
            "gc stall",
            "elapsed",
        ]),
        &rows,
    );

    // The headline claim, stated as a ratio: how much does IRS
    // deflation flatten the p99.9 commit tail at the highest tier?
    let high = &outcomes[outcomes.len() - MODES.len()..];
    let reg = high[0].quantile_ns(0.999) as f64;
    let itask = high[1].quantile_ns(0.999).max(1) as f64;
    let elect = high[2].quantile_ns(0.999).max(1) as f64;
    println!(
        "tail flattening @{}% live/heap (p99.9): regular/itask = {:.1}x, regular/itask+elect = {:.1}x",
        TIERS[TIERS.len() - 1],
        reg / itask,
        reg / elect,
    );
    println!();
}

/// Leader-crash ablation: a scheduled crash deposes the leader mid-log;
/// the quorum must elect, re-replicate, and commit everything anyway.
fn crash_sweep(jobs: usize, log: &mut SweepLog, quick: bool) {
    const NODES: usize = 3;
    const PRESSURE: u64 = 75;
    let plan =
        || FaultPlan::new(13).with_crash(NodeId(0), SimTime::ZERO + SimDuration::from_millis(2));
    let specs = MODES
        .iter()
        .map(|&m| {
            sweep::spec(format!("smr crash {}", m.label()), move || {
                run(&config(NODES, m, PRESSURE, quick).with_faults(plan()))
            })
        })
        .collect();
    let out = sweep::run_all(jobs, specs);
    log.absorb(&out);

    let mut rows = Vec::new();
    for o in out.into_iter().map(|o| o.result) {
        check(&o, "smr crash run");
        assert!(
            o.view_changes >= 1,
            "crashing the leader must force a view change"
        );
        rows.push(vec![
            o.mode.label().to_string(),
            o.commits.to_string(),
            o.view_changes.to_string(),
            o.final_view.to_string(),
            ms(o.quantile_ns(0.99)),
            ms(o.quantile_ns(0.999)),
            ms(o.latency.max()),
            dur_ms(o.elapsed),
        ]);
    }
    print_table(
        &format!(
            "Leader crash at 2ms ({NODES}-node quorum, {PRESSURE}% live/heap): elect, re-replicate, commit"
        ),
        &cols(&[
            "runtime", "commits", "viewchg", "view", "p99", "p99.9", "max", "elapsed",
        ]),
        &rows,
    );
}

fn main() {
    let mut h = sweep::harness();
    let jobs = h.jobs;
    let quick = h.flag("--quick");
    let mut log = h.log("smr");
    pressure_sweep(jobs, &mut log, 3, quick);
    if !quick {
        pressure_sweep(jobs, &mut log, 5, quick);
    }
    crash_sweep(jobs, &mut log, quick);
    log.finish();
}
