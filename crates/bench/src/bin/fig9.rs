//! Figure 9 (a–e): execution time (GC + compute) of the *regular*
//! programs as the thread count varies, per dataset. OME'd
//! configurations are marked instead of plotted, exactly as the paper
//! omits them.
//!
//! Usage: `fig9 [program ...]` where program ∈ {wc, hs, ii, hj, gr};
//! default all. `fig9 --quick` restricts to the two smallest datasets.

use apps::hyracks_apps::{gr, hj, hs, ii, wc, HyracksParams};
use itask_bench::{cell_csv, print_table, write_csv, Cell};
use workloads::tpch::TpchScale;
use workloads::webmap::WebmapSize;

const THREADS: [usize; 5] = [1, 2, 4, 6, 8];

fn params(threads: usize) -> HyracksParams {
    HyracksParams {
        threads,
        ..HyracksParams::default()
    }
}

fn sweep<F, T>(name: &str, datasets: &[&str], quick: bool, csv: Option<&str>, run: F)
where
    F: Fn(usize, usize) -> apps::RunSummary<T>,
{
    let n_sets = if quick {
        datasets.len().min(2)
    } else {
        datasets.len()
    };
    let mut header = vec!["dataset".to_string()];
    header.extend(THREADS.iter().map(|t| format!("{t} thr")));
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (d, label) in datasets.iter().enumerate().take(n_sets) {
        let mut row = vec![label.to_string()];
        for &t in &THREADS {
            let cell = Cell::from_summary(&run(d, t));
            row.push(cell.show());
            let mut rec = vec![label.to_string(), t.to_string()];
            rec.extend(cell_csv(&cell));
            csv_rows.push(rec);
        }
        rows.push(row);
    }
    print_table(
        &format!("Figure 9: {name} (regular, time by threads)"),
        &header,
        &rows,
    );
    if let Some(dir) = csv {
        let path = format!("{dir}/fig9_{}.csv", name.split(' ').next().unwrap_or(name));
        let header = [
            "dataset",
            "threads",
            "status",
            "paper_secs",
            "gc_frac",
            "peak_bytes",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>();
        if let Err(e) = write_csv(&path, &header, &csv_rows) {
            eprintln!("csv write failed ({path}): {e}");
        } else {
            println!("(csv: {path})");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    // `--csv <dir>`: also write one machine-readable file per program.
    let csv: Option<String> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1).cloned());
    let csv = csv.as_deref();
    let want = |p: &str| {
        let progs: Vec<&String> = {
            let mut skip_next = false;
            args.iter()
                .filter(|a| {
                    if skip_next {
                        skip_next = false;
                        return false;
                    }
                    if a.as_str() == "--csv" {
                        skip_next = true;
                        return false;
                    }
                    !a.starts_with("--")
                })
                .collect()
        };
        progs.is_empty() || progs.iter().any(|a| a.as_str() == p)
    };
    // Smallest-first so partial output is useful.
    let webmap: Vec<WebmapSize> = {
        let mut v = WebmapSize::ALL.to_vec();
        v.reverse();
        v
    };
    let web_labels: Vec<&str> = webmap.iter().map(|s| s.label()).collect();
    let tpch = TpchScale::TABLE4;
    let tpch_labels: Vec<&str> = tpch.iter().map(|s| s.label()).collect();

    if want("wc") {
        sweep("WC (word count)", &web_labels, quick, csv, |d, t| {
            wc::run_regular(webmap[d], &params(t))
        });
    }
    if want("hs") {
        sweep("HS (heap sort)", &web_labels, quick, csv, |d, t| {
            hs::run_regular(webmap[d], &params(t))
        });
    }
    if want("ii") {
        sweep("II (inverted index)", &web_labels, quick, csv, |d, t| {
            ii::run_regular(webmap[d], &params(t))
        });
    }
    if want("hj") {
        sweep("HJ (hash join)", &tpch_labels, quick, csv, |d, t| {
            hj::run_regular(tpch[d], &params(t))
        });
    }
    if want("gr") {
        sweep("GR (group by)", &tpch_labels, quick, csv, |d, t| {
            gr::run_regular(tpch[d], &params(t))
        });
    }
}
