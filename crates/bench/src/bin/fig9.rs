//! Figure 9 (a–e): execution time (GC + compute) of the *regular*
//! programs as the thread count varies, per dataset. OME'd
//! configurations are marked instead of plotted, exactly as the paper
//! omits them.
//!
//! Usage: `fig9 [--jobs N] [program ...]` where program ∈ {wc, hs, ii,
//! hj, gr}; default all. `fig9 --quick` restricts to the two smallest
//! datasets.

use apps::hyracks_apps::{gr, hj, hs, ii, wc, HyracksParams};
use itask_bench::sweep::{self, RunSpec};
use itask_bench::{cell_csv, print_table, write_csv, Cell};
use workloads::tpch::TpchScale;
use workloads::webmap::WebmapSize;

const THREADS: [usize; 5] = [1, 2, 4, 6, 8];

fn params(threads: usize) -> HyracksParams {
    HyracksParams {
        threads,
        ..HyracksParams::default()
    }
}

fn render(
    name: &str,
    datasets: &[&str],
    n_sets: usize,
    csv: Option<&str>,
    cells: &mut impl Iterator<Item = Cell>,
) {
    let mut header = vec!["dataset".to_string()];
    header.extend(THREADS.iter().map(|t| format!("{t} thr")));
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for label in datasets.iter().take(n_sets) {
        let mut row = vec![label.to_string()];
        for &t in &THREADS {
            let cell = cells.next().expect("grid cell");
            row.push(cell.show());
            let mut rec = vec![label.to_string(), t.to_string()];
            rec.extend(cell_csv(&cell));
            csv_rows.push(rec);
        }
        rows.push(row);
    }
    print_table(
        &format!("Figure 9: {name} (regular, time by threads)"),
        &header,
        &rows,
    );
    if let Some(dir) = csv {
        let path = format!("{dir}/fig9_{}.csv", name.split(' ').next().unwrap_or(name));
        let header = [
            "dataset",
            "threads",
            "status",
            "paper_secs",
            "gc_frac",
            "peak_bytes",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>();
        if let Err(e) = write_csv(&path, &header, &csv_rows) {
            eprintln!("csv write failed ({path}): {e}");
        } else {
            println!("(csv: {path})");
        }
    }
}

fn main() {
    let mut h = sweep::harness();
    let jobs = h.jobs;
    let quick = h.flag("--quick");
    let args = h.args.clone();
    // `--csv <dir>`: also write one machine-readable file per program.
    let csv: Option<String> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1).cloned());
    let csv = csv.as_deref();
    let want = |p: &str| {
        let progs: Vec<&String> = {
            let mut skip_next = false;
            args.iter()
                .filter(|a| {
                    if skip_next {
                        skip_next = false;
                        return false;
                    }
                    if a.as_str() == "--csv" {
                        skip_next = true;
                        return false;
                    }
                    !a.starts_with("--")
                })
                .collect()
        };
        progs.is_empty() || progs.iter().any(|a| a.as_str() == p)
    };
    // Smallest-first so partial output is useful.
    let webmap: Vec<WebmapSize> = {
        let mut v = WebmapSize::ALL.to_vec();
        v.reverse();
        v
    };
    let web_labels: Vec<&str> = webmap.iter().map(|s| s.label()).collect();
    let tpch = TpchScale::TABLE4;
    let tpch_labels: Vec<&str> = tpch.iter().map(|s| s.label()).collect();
    let mut log = h.log("fig9");

    // Every (program, dataset, threads) run is independent: one batch.
    let progs: Vec<&str> = ["wc", "hs", "ii", "hj", "gr"]
        .into_iter()
        .filter(|p| want(p))
        .collect();
    let n_for = |p: &str| {
        let full = match p {
            "wc" | "hs" | "ii" => web_labels.len(),
            _ => tpch_labels.len(),
        };
        if quick {
            full.min(2)
        } else {
            full
        }
    };
    let mut specs: Vec<RunSpec<Cell>> = Vec::new();
    for &p in &progs {
        let labels: &[&str] = match p {
            "wc" | "hs" | "ii" => &web_labels,
            _ => &tpch_labels,
        };
        for d in 0..n_for(p) {
            for &t in &THREADS {
                let (webmap, tpch) = (&webmap, &tpch);
                specs.push(sweep::spec(
                    format!("fig9 {p} {} t{t}", labels[d]),
                    move || match p {
                        "wc" => Cell::from_summary(&wc::run_regular(webmap[d], &params(t))),
                        "hs" => Cell::from_summary(&hs::run_regular(webmap[d], &params(t))),
                        "ii" => Cell::from_summary(&ii::run_regular(webmap[d], &params(t))),
                        "hj" => Cell::from_summary(&hj::run_regular(tpch[d], &params(t))),
                        _ => Cell::from_summary(&gr::run_regular(tpch[d], &params(t))),
                    },
                ));
            }
        }
    }
    let out = sweep::run_all(jobs, specs);
    log.absorb(&out);
    let mut cells = out.into_iter().map(|o| o.result);

    for &p in &progs {
        let (name, labels): (&str, &[&str]) = match p {
            "wc" => ("WC (word count)", &web_labels),
            "hs" => ("HS (heap sort)", &web_labels),
            "ii" => ("II (inverted index)", &web_labels),
            "hj" => ("HJ (hash join)", &tpch_labels),
            _ => ("GR (group by)", &tpch_labels),
        };
        render(name, labels, n_for(p), csv, &mut cells);
    }
    log.finish();
}
