//! Overload survival: ramping open-loop arrivals past saturation.
//!
//! The robustness counterpart to the `service` table. Arrival rate is
//! ramped by scaling every tenant's mean interarrival down (x1 = the
//! calibrated standard load, x4 = four times as many submissions into
//! the same cluster) and three configurations face each ramp:
//!
//! - `regular`  — the regular engine with no overload controls: the
//!   collapse baseline. Past saturation OMEs cascade and goodput falls.
//! - `itask`    — the ITask engine, still without controls: interrupts
//!   and spills absorb more load but queues grow without bound.
//! - `itask+ctl` — ITask plus the full overload stack: submit
//!   deadlines with deadline-aware shedding, bounded per-tenant queues,
//!   memory-aware admission, budgeted retries with seeded backoff, the
//!   per-node OME-storm circuit breaker, and cluster-wide brownout.
//!   The claim: goodput *plateaus* instead of collapsing — the service
//!   sheds the excess deterministically and keeps serving.
//!
//! Goodput is completed jobs per virtual second (integer fixed-point:
//! stable). The trailing `saturation:` lines classify each config
//! against its own uncongested x1 baseline on three axes — goodput
//! retention, failure rate, and drain overrun — and report `plateau`
//! only when all three hold at every load level.
//!
//! Usage: `overload [--jobs N] [--quick] [--scale]`. Output is
//! deterministic: every cell derives from one seeded virtual-time run,
//! assembled in spec order regardless of `--jobs`.
//!
//! `--scale` re-runs the same ramp with the offered load spread over a
//! lazily synthesized 10^5-tenant population (10^4 with `--quick`)
//! through two admission shards — same aggregate jobs/s, same
//! saturation verdicts, but the per-tenant rate is now microscopic and
//! the admission plane must stay O(log n) per decision to keep up.

use itask_bench::sweep::{self};
use itask_bench::{cols, print_table};
use simcore::SimDuration;
use simserve::{
    EngineKind, OverloadConfig, PolicyKind, RetryPolicy, ScaleSpec, Service, ServiceConfig,
    ServiceReport, TenantModel,
};

const SEED: u64 = 42;

/// Aggregate offered load at x1 in jobs per second, split across the
/// tenants: comfortably below cluster capacity (~350 jobs/s for the
/// ITask engine on the standard 4-node shape), so the saturation knee
/// lands *inside* the sweep rather than before it.
const BASE_OFFERED_PER_SEC: u64 = 250;

/// Arrival horizon for every overload cell: longer than the service
/// standard, so goodput *rates* compare enough completions that one
/// straggler's drain tail cannot move the verdict.
const HORIZON: SimDuration = SimDuration::from_millis(80);
/// Submit deadline armed on every tenant in the controlled config.
const DEADLINE: SimDuration = SimDuration::from_millis(20);
/// Per-tenant queue bound in the controlled config.
const QUEUE_CAP: usize = 4;

#[derive(Clone, Copy, PartialEq)]
enum Config {
    Regular,
    Itask,
    ItaskCtl,
}

impl Config {
    const ALL: [Config; 3] = [Config::Regular, Config::Itask, Config::ItaskCtl];

    fn label(self) -> &'static str {
        match self {
            Config::Regular => "regular",
            Config::Itask => "itask",
            Config::ItaskCtl => "itask+ctl",
        }
    }
}

/// The scale ramp: identical aggregate offered load, but spread across
/// a synthesized `population` via the lazy arrival stream and gated by
/// two admission shards. `max_active` is halved because the cap is per
/// shard (2 x 2 = the classic global 4); likewise the brownout cap.
fn run_config_scale(config: Config, population: u32, load: u64) -> ServiceReport {
    let engine = match config {
        Config::Regular => EngineKind::Regular,
        _ => EngineKind::Itask,
    };
    let mut cfg = ServiceConfig::standard(engine, 0, SEED);
    cfg.horizon = HORIZON;
    cfg.admission.max_active = 2; // per shard
    let mut model = TenantModel::uniform(
        population,
        SimDuration::from_nanos(1_000_000_000 / (BASE_OFFERED_PER_SEC * load)),
    );
    if config == Config::ItaskCtl {
        model.deadline = Some(DEADLINE);
        cfg.admission.policy = PolicyKind::MemoryAware;
        cfg.admission.min_free_ratio = 0.2;
        cfg.admission.queue_cap = Some(QUEUE_CAP);
        cfg.retry = RetryPolicy::budgeted();
        cfg.overload = OverloadConfig {
            breaker: Some(simserve::BreakerConfig {
                trip_score: 12,
                ..Default::default()
            }),
            brownout: Some(simserve::BrownoutConfig {
                max_active: 1, // per shard
                ..Default::default()
            }),
        };
    }
    cfg.scale = Some(ScaleSpec {
        model,
        admission_shards: 2,
    });
    Service::new(cfg).run()
}

fn run_config(config: Config, tenants: u32, load: u64) -> ServiceReport {
    let engine = match config {
        Config::Regular => EngineKind::Regular,
        _ => EngineKind::Itask,
    };
    let mut cfg = ServiceConfig::standard(engine, tenants, SEED);
    cfg.horizon = HORIZON;
    let interarrival =
        SimDuration::from_nanos(tenants as u64 * 1_000_000_000 / (BASE_OFFERED_PER_SEC * load));
    for t in &mut cfg.tenants {
        t.mean_interarrival = interarrival;
    }
    if config == Config::ItaskCtl {
        for t in &mut cfg.tenants {
            t.deadline = Some(DEADLINE);
        }
        cfg.admission.policy = PolicyKind::MemoryAware;
        cfg.admission.min_free_ratio = 0.2;
        cfg.admission.queue_cap = Some(QUEUE_CAP);
        cfg.retry = RetryPolicy::budgeted();
        // The library defaults are calibrated for OME storms on the
        // regular engine; on ITask heaps full collections are routine,
        // so require a hotter window before quarantining a node.
        cfg.overload = OverloadConfig {
            breaker: Some(simserve::BreakerConfig {
                trip_score: 12,
                ..Default::default()
            }),
            brownout: Some(simserve::BrownoutConfig {
                max_active: 3,
                ..Default::default()
            }),
        };
    }
    Service::new(cfg).run()
}

/// Completed jobs per virtual second, in tenths (integer math: stable).
fn goodput_tenths(r: &ServiceReport) -> u64 {
    let ns = r.elapsed.as_nanos().max(1);
    r.total(|t| t.completed) * 10_000_000_000 / ns
}

fn fmt_goodput(tenths: u64) -> String {
    format!("{}.{}", tenths / 10, tenths % 10)
}

/// Nanoseconds as fixed-point milliseconds (integer math: stable).
fn fmt_ms(ns: u64) -> String {
    let tenths = ns / 100_000;
    format!("{}.{}ms", tenths / 10, tenths % 10)
}

fn main() {
    let mut h = sweep::harness();
    let jobs = h.jobs;
    let scale = h.flag("--scale");
    let quick = h.flag("--quick");
    let mut log = h.log(if scale { "overload-scale" } else { "overload" });

    let (tenants, loads): (u32, &[u64]) = match (scale, quick) {
        (false, true) => (4, &[1, 2, 4]),
        (false, false) => (6, &[1, 2, 4, 8]),
        (true, true) => (10_000, &[1, 2, 4]),
        (true, false) => (100_000, &[1, 2, 4, 8]),
    };

    let mut specs = Vec::new();
    for &load in loads {
        for config in Config::ALL {
            let name = format!("overload x{load} {}", config.label());
            specs.push(if scale {
                sweep::spec(name, move || run_config_scale(config, tenants, load))
            } else {
                sweep::spec(name, move || run_config(config, tenants, load))
            });
        }
    }
    let out = sweep::run_all(jobs, specs);
    log.absorb(&out);
    let mut runs = out.into_iter().map(|o| o.result);

    // reports[load_idx][config_idx], in spec order.
    let reports: Vec<Vec<ServiceReport>> = loads
        .iter()
        .map(|_| {
            Config::ALL
                .iter()
                .map(|_| runs.next().expect("run"))
                .collect()
        })
        .collect();

    // Headline: goodput and completions per config across the ramp.
    let mut rows = Vec::new();
    for (i, &load) in loads.iter().enumerate() {
        let [reg, it, ctl] = &reports[i][..] else {
            unreachable!()
        };
        let done = |r: &ServiceReport| {
            format!("{}/{}", r.total(|t| t.completed), r.total(|t| t.submitted))
        };
        rows.push(vec![
            format!("x{load}"),
            fmt_goodput(goodput_tenths(reg)),
            done(reg),
            fmt_goodput(goodput_tenths(it)),
            done(it),
            fmt_goodput(goodput_tenths(ctl)),
            done(ctl),
            ctl.total_shed().to_string(),
        ]);
    }
    print_table(
        &format!("Overload ramp: goodput (jobs/s) past saturation ({tenants} tenants, 4 nodes)"),
        &cols(&[
            "load",
            "reg good",
            "reg done",
            "itask good",
            "itask done",
            "ctl good",
            "ctl done",
            "ctl shed",
        ]),
        &rows,
    );

    // Detail: where the controlled config's excess load went.
    let mut rows = Vec::new();
    for (i, &load) in loads.iter().enumerate() {
        let ctl = &reports[i][2];
        let lat = ctl.merged_latency();
        rows.push(vec![
            format!("x{load}"),
            ctl.total(|t| t.shed_deadline).to_string(),
            ctl.total(|t| t.shed_queue).to_string(),
            ctl.total(|t| t.shed_retry).to_string(),
            ctl.total(|t| t.failed).to_string(),
            ctl.quarantines.to_string(),
            ctl.brownout_rounds.to_string(),
            fmt_ms(lat.quantile(0.99)),
        ]);
    }
    print_table(
        "Overload controls detail (itask+ctl): shed breakdown, quarantine, brownout",
        &cols(&[
            "load", "deadline", "queue", "retry", "failed", "quarant", "brownout", "p99",
        ]),
        &rows,
    );

    // Saturation verdicts. A config survives the ramp (plateau) only if
    // every load level, measured against the uncongested x1 baseline,
    // simultaneously holds all three axes of graceful degradation:
    //   goodput  — completion rate stays >= 80% of the x1 rate;
    //   failures — at most 10% of submitted jobs die;
    //   latency  — the run drains within 3x the arrival horizon
    //              (an ever-growing backlog is collapse even when the
    //              completion rate looks healthy).
    // Otherwise it collapsed, labelled with the dominant broken axis.
    for (c, config) in Config::ALL.iter().enumerate() {
        let series: Vec<&ServiceReport> = (0..loads.len()).map(|i| &reports[i][c]).collect();
        let baseline = goodput_tenths(series[0]).max(1);
        let min_good = series.iter().map(|r| goodput_tenths(r)).min().unwrap_or(0);
        let good_pct = min_good * 100 / baseline;
        let max_fail_pct = series
            .iter()
            .map(|r| r.total(|t| t.failed) * 100 / r.total(|t| t.submitted).max(1))
            .max()
            .unwrap_or(0);
        let max_drain_tenths = series
            .iter()
            .map(|r| r.elapsed.as_nanos() * 10 / HORIZON.as_nanos().max(1))
            .max()
            .unwrap_or(0);
        let verdict = if max_fail_pct > 10 {
            "collapse (failures)"
        } else if max_drain_tenths > 30 {
            "collapse (latency)"
        } else if good_pct < 80 {
            "collapse (goodput)"
        } else {
            "plateau"
        };
        println!(
            "saturation: {:<9} min={} jobs/s ({good_pct}% of x1)  max-fail={max_fail_pct}%  max-drain={}.{}x  -> {verdict}",
            config.label(),
            fmt_goodput(min_good),
            max_drain_tenths / 10,
            max_drain_tenths % 10,
        );
    }

    log.finish();
}
