//! Figure 10: the ITask version of each Hyracks program vs the regular
//! version under its best configuration, per dataset — time breakdown
//! (GC vs compute) and peak per-node memory.
//!
//! The regular "best configuration" is found the way the paper did it:
//! sweep thread counts and take the fastest *successful* run (OME runs
//! are reported as failures, as Figure 10 greys them out).
//!
//! Usage: `fig10 [--jobs N] [program ...]`, programs ∈ {wc, hs, ii, hj, gr}.

use apps::hyracks_apps::{gr, hj, hs, ii, wc, HyracksParams};
use itask_bench::sweep::{self, RunSpec};
use itask_bench::{cell_csv, print_table, write_csv, Cell};
use workloads::tpch::TpchScale;
use workloads::webmap::WebmapSize;

const THREADS: [usize; 5] = [1, 2, 4, 6, 8];

fn params(threads: usize) -> HyracksParams {
    HyracksParams {
        threads,
        ..HyracksParams::default()
    }
}

/// Best (fastest successful) regular run across thread counts, replayed
/// from the thread-sweep cells in THREADS order.
fn best_regular(cells: &mut impl Iterator<Item = Cell>) -> (Option<usize>, Cell) {
    let mut best: Option<(usize, Cell)> = None;
    for &t in &THREADS {
        let cell = cells.next().expect("regular cell");
        if cell.ok {
            match &best {
                Some((_, b)) if b.ok && b.elapsed <= cell.elapsed => {}
                _ => best = Some((t, cell.clone())),
            }
        } else if best.is_none() {
            best = Some((t, cell));
        }
    }
    let (t, cell) = best.expect("at least one configuration attempted");
    (cell.ok.then_some(t), cell)
}

fn render(
    name: &str,
    datasets: &[&str],
    csv: Option<&str>,
    cells: &mut impl Iterator<Item = Cell>,
) {
    let header: Vec<String> = [
        "dataset",
        "regular (best cfg)",
        "thr",
        "ITask",
        "peak reg",
        "peak ITask",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for label in datasets.iter() {
        let (best_t, reg) = best_regular(cells);
        let it = cells.next().expect("itask cell");
        rows.push(vec![
            label.to_string(),
            reg.show(),
            best_t.map(|t| t.to_string()).unwrap_or_else(|| "-".into()),
            it.show(),
            format!("{}", reg.peak),
            format!("{}", it.peak),
        ]);
        let mut rec = vec![label.to_string(), "regular".to_string()];
        rec.extend(cell_csv(&reg));
        csv_rows.push(rec);
        let mut rec = vec![label.to_string(), "itask".to_string()];
        rec.extend(cell_csv(&it));
        csv_rows.push(rec);
    }
    print_table(
        &format!("Figure 10: {name} — ITask vs best regular"),
        &header,
        &rows,
    );
    if let Some(dir) = csv {
        let path = format!("{dir}/fig10_{name}.csv");
        let header = [
            "dataset",
            "version",
            "status",
            "paper_secs",
            "gc_frac",
            "peak_bytes",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>();
        if let Err(e) = write_csv(&path, &header, &csv_rows) {
            eprintln!("csv write failed ({path}): {e}");
        } else {
            println!("(csv: {path})");
        }
    }
}

fn main() {
    let h = sweep::harness();
    let jobs = h.jobs;
    let args = h.args.clone();
    let csv: Option<String> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1).cloned());
    let csv = csv.as_deref();
    let want = |p: &str| {
        let mut skip_next = false;
        let progs: Vec<&String> = args
            .iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if a.as_str() == "--csv" {
                    skip_next = true;
                    return false;
                }
                !a.starts_with("--")
            })
            .collect();
        progs.is_empty() || progs.iter().any(|a| a.as_str() == p)
    };
    let webmap: Vec<WebmapSize> = {
        let mut v = WebmapSize::ALL.to_vec();
        v.reverse();
        v
    };
    let web_labels: Vec<&str> = webmap.iter().map(|s| s.label()).collect();
    let tpch = TpchScale::TABLE4;
    let tpch_labels: Vec<&str> = tpch.iter().map(|s| s.label()).collect();
    let mut log = h.log("fig10");

    // Per program and dataset: thread sweep then the ITask run, all
    // independent — one batch.
    let progs: Vec<&str> = ["wc", "hs", "ii", "hj", "gr"]
        .into_iter()
        .filter(|p| want(p))
        .collect();
    let mut specs: Vec<RunSpec<Cell>> = Vec::new();
    for &p in &progs {
        let labels: &[&str] = match p {
            "wc" | "hs" | "ii" => &web_labels,
            _ => &tpch_labels,
        };
        for d in 0..labels.len() {
            for &t in &THREADS {
                let (webmap, tpch) = (&webmap, &tpch);
                specs.push(sweep::spec(
                    format!("fig10 {p} {} reg t{t}", labels[d]),
                    move || match p {
                        "wc" => Cell::from_summary(&wc::run_regular(webmap[d], &params(t))),
                        "hs" => Cell::from_summary(&hs::run_regular(webmap[d], &params(t))),
                        "ii" => Cell::from_summary(&ii::run_regular(webmap[d], &params(t))),
                        "hj" => Cell::from_summary(&hj::run_regular(tpch[d], &params(t))),
                        _ => Cell::from_summary(&gr::run_regular(tpch[d], &params(t))),
                    },
                ));
            }
            let (webmap, tpch) = (&webmap, &tpch);
            specs.push(sweep::spec(
                format!("fig10 {p} {} itask", labels[d]),
                move || match p {
                    "wc" => Cell::from_summary(&wc::run_itask(webmap[d], &params(8))),
                    "hs" => Cell::from_summary(&hs::run_itask(webmap[d], &params(8))),
                    "ii" => Cell::from_summary(&ii::run_itask(webmap[d], &params(8))),
                    "hj" => Cell::from_summary(&hj::run_itask(tpch[d], &params(8))),
                    _ => Cell::from_summary(&gr::run_itask(tpch[d], &params(8))),
                },
            ));
        }
    }
    let out = sweep::run_all(jobs, specs);
    log.absorb(&out);
    let mut cells = out.into_iter().map(|o| o.result);

    for &p in &progs {
        let (name, labels): (&str, &[&str]) = match p {
            "wc" => ("WC", &web_labels),
            "hs" => ("HS", &web_labels),
            "ii" => ("II", &web_labels),
            "hj" => ("HJ", &tpch_labels),
            _ => ("GR", &tpch_labels),
        };
        render(name, labels, csv, &mut cells);
    }
    log.finish();
}
