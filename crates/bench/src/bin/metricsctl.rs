//! Metrics-analysis CLI for `--metrics` dumps.
//!
//! ```text
//! metricsctl report <dump> [--threshold F]
//!                             per-run rollups (finals/peaks per
//!                             metric), histogram tails, memory-
//!                             pressure windows (live/heap >= F,
//!                             default 0.9) and the pressure-vs-
//!                             interrupt phase alignment
//! metricsctl diff <a> <b>     label-matched A/B final-value and
//!                             histogram deltas
//! ```
//!
//! Paths may point at either the JSONL dump (`foo.jsonl`) or the
//! OpenMetrics snapshot twin (`foo.jsonl.om`); analysis always reads
//! the JSONL form, falling back to the path without the `.om` suffix.

use itask_bench::metricsfmt;

const DEFAULT_THRESHOLD: f64 = 0.9;

fn usage() -> ! {
    eprintln!("usage: metricsctl report <dump> [--threshold F] | metricsctl diff <a> <b>");
    std::process::exit(2);
}

/// Resolves a user-supplied path to the JSONL file to analyze.
fn jsonl_path(arg: &str) -> String {
    match arg.strip_suffix(".om") {
        Some(base) if std::path::Path::new(base).exists() => base.to_string(),
        _ => arg.to_string(),
    }
}

fn load(arg: &str) -> Vec<metricsfmt::MetricsRun> {
    let path = jsonl_path(arg);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("metricsctl: cannot read {path}: {e}");
        std::process::exit(1);
    });
    metricsfmt::load_jsonl(&text).unwrap_or_else(|e| {
        eprintln!("metricsctl: {path}: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold = DEFAULT_THRESHOLD;
    if let Some(i) = args.iter().position(|a| a == "--threshold") {
        let Some(v) = args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) else {
            eprintln!("metricsctl: --threshold requires a number");
            std::process::exit(2);
        };
        threshold = v;
        args.drain(i..i + 2);
    }
    match args.first().map(String::as_str) {
        Some("report") if args.len() == 2 => {
            print!("{}", metricsfmt::report(&load(&args[1]), threshold));
        }
        Some("diff") if args.len() == 3 => {
            print!("{}", metricsfmt::diff(&load(&args[1]), &load(&args[2])));
        }
        _ => usage(),
    }
}
