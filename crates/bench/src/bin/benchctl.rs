//! Bench-trajectory CLI: record and gate wall-clock baselines.
//!
//! ```text
//! benchctl record <sweeps.json> <trajectory.json>
//!                             fold per-run wall times into the
//!                             committed (bin, label) -> median-ms
//!                             baseline
//! benchctl gate <trajectory.json> <sweeps.json> [--tolerance F]
//!                             compare a fresh sweeps file against the
//!                             baseline; exit 1 when any run exceeds
//!                             baseline x F (default 5.0) or a baseline
//!                             label disappeared
//! ```
//!
//! Wall times are host-dependent: the gate is a coarse tripwire for
//! order-of-magnitude regressions, not a benchmark suite.

use itask_bench::trajectory;

const DEFAULT_TOLERANCE: f64 = 5.0;

fn usage() -> ! {
    eprintln!(
        "usage: benchctl record <sweeps.json> <trajectory.json> | benchctl gate <trajectory.json> <sweeps.json> [--tolerance F]"
    );
    std::process::exit(2);
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("benchctl: cannot read {path}: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = DEFAULT_TOLERANCE;
    if let Some(i) = args.iter().position(|a| a == "--tolerance") {
        let Some(v) = args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) else {
            eprintln!("benchctl: --tolerance requires a number");
            std::process::exit(2);
        };
        tolerance = v;
        args.drain(i..i + 2);
    }
    match args.first().map(String::as_str) {
        Some("record") if args.len() == 3 => {
            let entries = trajectory::parse_sweeps(&read(&args[1])).unwrap_or_else(|e| {
                eprintln!("benchctl: {}: {e}", args[1]);
                std::process::exit(1);
            });
            let doc = trajectory::render(&entries);
            std::fs::write(&args[2], &doc).unwrap_or_else(|e| {
                eprintln!("benchctl: cannot write {}: {e}", args[2]);
                std::process::exit(1);
            });
            println!("recorded {} entries to {}", entries.len(), args[2]);
        }
        Some("gate") if args.len() == 3 => {
            let baseline = trajectory::parse_trajectory(&read(&args[1])).unwrap_or_else(|e| {
                eprintln!("benchctl: {}: {e}", args[1]);
                std::process::exit(1);
            });
            let current = trajectory::parse_sweeps(&read(&args[2])).unwrap_or_else(|e| {
                eprintln!("benchctl: {}: {e}", args[2]);
                std::process::exit(1);
            });
            let g = trajectory::gate(&baseline, &current, tolerance);
            print!("{}", g.report);
            if g.failures > 0 {
                std::process::exit(1);
            }
        }
        _ => usage(),
    }
}
