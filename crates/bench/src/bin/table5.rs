//! Table 5: scalability of the *regular* programs under 12GB heaps —
//! the largest dataset each program can process, with the thread count
//! and task granularity that give the best performance there.
//!
//! Usage: `table5 [program ...]`; `--quick` narrows the granularity
//! sweep to 16/32KB.

use apps::hyracks_apps::{gr, hj, hs, ii, wc, HyracksParams};
use apps::RunSummary;
use itask_bench::{cols, print_table};
use simcore::{ByteSize, SimDuration, SCALE};
use workloads::tpch::TpchScale;
use workloads::webmap::WebmapSize;

const THREADS: [usize; 5] = [1, 2, 4, 6, 8];
const GRANS_KIB: [u64; 5] = [8, 16, 32, 64, 128];

fn params(threads: usize, gran_kib: u64) -> HyracksParams {
    HyracksParams {
        threads,
        granularity: ByteSize::kib(gran_kib),
        ..HyracksParams::default()
    }
}

/// Finds the largest dataset index with any successful (threads, gran)
/// configuration, plus the best configuration there.
fn scalability<T>(
    name: &str,
    labels: &[&str],
    grans: &[u64],
    run: impl Fn(usize, usize, u64) -> RunSummary<T>,
) -> Vec<String> {
    let mut best: Option<(usize, usize, u64, SimDuration)> = None;
    for d in 0..labels.len() {
        let mut best_here: Option<(usize, u64, SimDuration)> = None;
        for &t in &THREADS {
            for &g in grans {
                let s = run(d, t, g);
                if s.ok() {
                    let e = s.report.elapsed;
                    if best_here.map(|b| e < b.2).unwrap_or(true) {
                        best_here = Some((t, g, e));
                    }
                }
            }
        }
        match best_here {
            Some((t, g, e)) => best = Some((d, t, g, e)),
            None => break, // larger datasets will not fare better
        }
    }
    match best {
        Some((d, t, g, e)) => vec![
            name.to_string(),
            labels[d].to_string(),
            t.to_string(),
            format!("{g}KB"),
            format!("{:.1}s", e.as_secs_f64() * SCALE as f64),
        ],
        None => vec![
            name.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ],
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let want = |p: &str| {
        let progs: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
        progs.is_empty() || progs.iter().any(|a| a.as_str() == p)
    };
    let grans: Vec<u64> = if quick {
        vec![16, 32]
    } else {
        GRANS_KIB.to_vec()
    };

    let webmap: Vec<WebmapSize> = {
        let mut v = WebmapSize::ALL.to_vec();
        v.reverse();
        v
    };
    let web_labels: Vec<&str> = webmap.iter().map(|s| s.label()).collect();
    let tpch = TpchScale::TABLE4;
    let tpch_labels: Vec<&str> = tpch.iter().map(|s| s.label()).collect();

    let mut rows = Vec::new();
    if want("wc") {
        rows.push(scalability("WC", &web_labels, &grans, |d, t, g| {
            wc::run_regular(webmap[d], &params(t, g))
        }));
    }
    if want("hs") {
        rows.push(scalability("HS", &web_labels, &grans, |d, t, g| {
            hs::run_regular(webmap[d], &params(t, g))
        }));
    }
    if want("ii") {
        rows.push(scalability("II", &web_labels, &grans, |d, t, g| {
            ii::run_regular(webmap[d], &params(t, g))
        }));
    }
    if want("hj") {
        rows.push(scalability("HJ", &tpch_labels, &grans, |d, t, g| {
            hj::run_regular(tpch[d], &params(t, g))
        }));
    }
    if want("gr") {
        rows.push(scalability("GR", &tpch_labels, &grans, |d, t, g| {
            gr::run_regular(tpch[d], &params(t, g))
        }));
    }

    let header = cols(&[
        "Name",
        "DS (largest scaled)",
        "#K (threads)",
        "#T (granularity)",
        "best time",
    ]);
    print_table(
        "Table 5: scalability of the regular programs (12GB heap)",
        &header,
        &rows,
    );
}
