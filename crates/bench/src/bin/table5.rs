//! Table 5: scalability of the *regular* programs under 12GB heaps —
//! the largest dataset each program can process, with the thread count
//! and task granularity that give the best performance there.
//!
//! Usage: `table5 [--jobs N] [program ...]`; `--quick` narrows the
//! granularity sweep to 16/32KB.

use apps::hyracks_apps::{gr, hj, hs, ii, wc, HyracksParams};
use apps::RunSummary;
use itask_bench::sweep::{self, SweepLog};
use itask_bench::{cols, print_table};
use simcore::{ByteSize, SimDuration, SCALE};
use workloads::tpch::TpchScale;
use workloads::webmap::WebmapSize;

const THREADS: [usize; 5] = [1, 2, 4, 6, 8];
const GRANS_KIB: [u64; 5] = [8, 16, 32, 64, 128];

fn params(threads: usize, gran_kib: u64) -> HyracksParams {
    HyracksParams {
        threads,
        granularity: ByteSize::kib(gran_kib),
        ..HyracksParams::default()
    }
}

/// Finds the largest dataset index with any successful (threads, gran)
/// configuration, plus the best configuration there.
///
/// Datasets stay sequential (the serial harness stops at the first one
/// with no viable configuration, and we do no extra work either), but
/// each dataset's whole (threads × granularity) grid fans out across
/// the worker pool. Selection replays outcomes in grid order, so the
/// winner — and the printed row — matches a serial sweep exactly.
fn scalability<T: Send>(
    jobs: usize,
    log: &mut SweepLog,
    name: &str,
    labels: &[&str],
    grans: &[u64],
    run: impl Fn(usize, usize, u64) -> RunSummary<T> + Sync,
) -> Vec<String> {
    let mut best: Option<(usize, usize, u64, SimDuration)> = None;
    for (d, label) in labels.iter().enumerate() {
        let run = &run;
        let mut specs = Vec::new();
        for &t in &THREADS {
            for &g in grans {
                specs.push(sweep::spec(
                    format!("table5 {name} {label} t{t} g{g}KiB"),
                    move || {
                        let s = run(d, t, g);
                        (s.ok(), s.report.elapsed)
                    },
                ));
            }
        }
        let outcomes = sweep::run_all(jobs, specs);
        log.absorb(&outcomes);
        let mut results = outcomes.into_iter().map(|o| o.result);
        let mut best_here: Option<(usize, u64, SimDuration)> = None;
        for &t in &THREADS {
            for &g in grans {
                let (ok, e) = results.next().expect("grid outcome");
                if ok && best_here.map(|b| e < b.2).unwrap_or(true) {
                    best_here = Some((t, g, e));
                }
            }
        }
        match best_here {
            Some((t, g, e)) => best = Some((d, t, g, e)),
            None => break, // larger datasets will not fare better
        }
    }
    match best {
        Some((d, t, g, e)) => vec![
            name.to_string(),
            labels[d].to_string(),
            t.to_string(),
            format!("{g}KB"),
            format!("{:.1}s", e.as_secs_f64() * SCALE as f64),
        ],
        None => vec![
            name.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ],
    }
}

fn main() {
    let mut h = sweep::harness();
    let jobs = h.jobs;
    let quick = h.flag("--quick");
    let args = h.args.clone();
    let want = |p: &str| {
        let progs: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
        progs.is_empty() || progs.iter().any(|a| a.as_str() == p)
    };
    let grans: Vec<u64> = if quick {
        vec![16, 32]
    } else {
        GRANS_KIB.to_vec()
    };
    let mut log = h.log("table5");

    let webmap: Vec<WebmapSize> = {
        let mut v = WebmapSize::ALL.to_vec();
        v.reverse();
        v
    };
    let web_labels: Vec<&str> = webmap.iter().map(|s| s.label()).collect();
    let tpch = TpchScale::TABLE4;
    let tpch_labels: Vec<&str> = tpch.iter().map(|s| s.label()).collect();

    let mut rows = Vec::new();
    if want("wc") {
        rows.push(scalability(
            jobs,
            &mut log,
            "WC",
            &web_labels,
            &grans,
            |d, t, g| wc::run_regular(webmap[d], &params(t, g)),
        ));
    }
    if want("hs") {
        rows.push(scalability(
            jobs,
            &mut log,
            "HS",
            &web_labels,
            &grans,
            |d, t, g| hs::run_regular(webmap[d], &params(t, g)),
        ));
    }
    if want("ii") {
        rows.push(scalability(
            jobs,
            &mut log,
            "II",
            &web_labels,
            &grans,
            |d, t, g| ii::run_regular(webmap[d], &params(t, g)),
        ));
    }
    if want("hj") {
        rows.push(scalability(
            jobs,
            &mut log,
            "HJ",
            &tpch_labels,
            &grans,
            |d, t, g| hj::run_regular(tpch[d], &params(t, g)),
        ));
    }
    if want("gr") {
        rows.push(scalability(
            jobs,
            &mut log,
            "GR",
            &tpch_labels,
            &grans,
            |d, t, g| gr::run_regular(tpch[d], &params(t, g)),
        ));
    }

    let header = cols(&[
        "Name",
        "DS (largest scaled)",
        "#K (threads)",
        "#T (granularity)",
        "best time",
    ]);
    print_table(
        "Table 5: scalability of the regular programs (12GB heap)",
        &header,
        &rows,
    );
    log.finish();
}
