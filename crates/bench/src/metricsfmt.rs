//! Metrics-dump parsing and analysis for `metricsctl`.
//!
//! Consumes the JSONL written by `--metrics` (one run-header line per
//! run, one line per sampled gridpoint, one line per final histogram
//! summary) and computes the rollups an operator reads off a metrics
//! plane: per-metric finals and peaks, memory-pressure windows
//! (live/heap ratio crossing a threshold), the pressure-vs-interrupt
//! phase alignment the paper's Figure 3 narrative asserts, and a
//! label-matched A/B diff between two dumps.
//!
//! The JSON parsing reuses [`crate::tracefmt`]'s hand-rolled parser;
//! histogram lines reconstruct a [`SketchSnapshot`] so the rendering is
//! exactly the shared `mid_line`/`tail_line` every other latency
//! consumer uses.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use simcore::metrics::{Metric, MetricKind};
use simcore::sketch::{fmt_ms, SketchSnapshot};

use crate::tracefmt::{parse, Json};

/// One sampled gridpoint of a dump.
#[derive(Clone, Debug)]
pub struct MetricsPoint {
    /// Gridpoint timestamp, virtual nanoseconds.
    pub ts: u64,
    /// Node id, `-1` for cluster-wide metrics.
    pub node: i64,
    /// Dotted metric name.
    pub metric: String,
    /// Sampled value (counters cumulative, gauges instantaneous).
    pub value: i64,
}

/// One final histogram summary of a dump.
#[derive(Clone, Debug)]
pub struct MetricsHist {
    /// Node id, `-1` for cluster-wide metrics.
    pub node: i64,
    /// Dotted metric name.
    pub metric: String,
    /// Sum of all observed samples.
    pub sum: u64,
    /// Count, extrema and reporting quantiles.
    pub snap: SketchSnapshot,
}

/// One run's worth of a metrics dump.
#[derive(Clone, Debug)]
pub struct MetricsRun {
    /// The sweep label of the run.
    pub label: String,
    /// Sampling cadence, virtual nanoseconds.
    pub cadence_ns: u64,
    /// Points in `(ts, node, metric)` order, as dumped.
    pub points: Vec<MetricsPoint>,
    /// Histogram summaries in `(node, metric)` order, as dumped.
    pub hists: Vec<MetricsHist>,
}

/// Loads a `--metrics` JSONL dump.
pub fn load_jsonl(text: &str) -> Result<Vec<MetricsRun>, String> {
    let mut runs: Vec<MetricsRun> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}", lineno + 1);
        let v = parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let run = v
            .get("run")
            .and_then(Json::as_u64)
            .ok_or_else(|| err("missing run index"))? as usize;
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| err("missing kind"))?;
        let num = |key: &str| v.get(key).and_then(Json::as_u64).ok_or_else(|| err(key));
        match kind {
            "run" => {
                if run != runs.len() {
                    return Err(err(&format!(
                        "run header {run} out of order (have {})",
                        runs.len()
                    )));
                }
                runs.push(MetricsRun {
                    label: v
                        .get("label")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    cadence_ns: num("cadence_ns")?,
                    points: Vec::new(),
                    hists: Vec::new(),
                });
            }
            "point" => {
                let target = runs
                    .get_mut(run)
                    .ok_or_else(|| err("point before its run header"))?;
                target.points.push(MetricsPoint {
                    ts: num("ts")?,
                    node: v.get("node").and_then(Json::as_i64).unwrap_or(-1),
                    metric: v
                        .get("metric")
                        .and_then(Json::as_str)
                        .ok_or_else(|| err("missing metric"))?
                        .to_string(),
                    value: v
                        .get("value")
                        .and_then(Json::as_i64)
                        .ok_or_else(|| err("value"))?,
                });
            }
            "hist" => {
                let target = runs
                    .get_mut(run)
                    .ok_or_else(|| err("hist before its run header"))?;
                target.hists.push(MetricsHist {
                    node: v.get("node").and_then(Json::as_i64).unwrap_or(-1),
                    metric: v
                        .get("metric")
                        .and_then(Json::as_str)
                        .ok_or_else(|| err("missing metric"))?
                        .to_string(),
                    sum: num("sum")?,
                    snap: SketchSnapshot {
                        count: num("count")?,
                        min: num("min")?,
                        max: num("max")?,
                        p50: num("p50")?,
                        p90: num("p90")?,
                        p99: num("p99")?,
                        p999: num("p999")?,
                    },
                });
            }
            other => return Err(err(&format!("unknown kind {other:?}"))),
        }
    }
    Ok(runs)
}

fn node_name(node: i64) -> String {
    if node < 0 {
        "cluster".to_string()
    } else {
        format!("node{node}")
    }
}

/// Per-series (node-keyed) rollup of one metric within a run.
#[derive(Default)]
struct SeriesRollup {
    finals: BTreeMap<i64, i64>,
    peak: i64,
    points: usize,
}

/// A contiguous stretch where a node's live/heap ratio sat at or above
/// the pressure threshold: `[start, end]` gridpoint timestamps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PressureWindow {
    /// Node the window belongs to.
    pub node: i64,
    /// First gridpoint at or above the threshold.
    pub start: u64,
    /// Last gridpoint still at or above (== `start` for one-cell
    /// windows; the next sample below the threshold closes the window).
    pub end: u64,
}

/// Detects per-node memory-pressure windows: walking the sampled points
/// in dump order, a window opens at the first gridpoint where
/// `mem.live_bytes / mem.heap_bytes >= threshold` and closes at the
/// last gridpoint before the ratio drops back below. Nodes that never
/// report both gauges contribute no windows.
pub fn pressure_windows(run: &MetricsRun, threshold: f64) -> Vec<PressureWindow> {
    #[derive(Default)]
    struct NodeState {
        live: Option<i64>,
        heap: Option<i64>,
        open: Option<u64>,
        last_hot: u64,
    }
    let mut states: BTreeMap<i64, NodeState> = BTreeMap::new();
    let mut windows = Vec::new();
    for p in &run.points {
        let slot = match p.metric.as_str() {
            "mem.live_bytes" => 0,
            "mem.heap_bytes" => 1,
            _ => continue,
        };
        let st = states.entry(p.node).or_default();
        if slot == 0 {
            st.live = Some(p.value);
        } else {
            st.heap = Some(p.value);
        }
        let (Some(live), Some(heap)) = (st.live, st.heap) else {
            continue;
        };
        let hot = heap > 0 && live as f64 / heap as f64 >= threshold;
        match (hot, st.open) {
            (true, None) => {
                st.open = Some(p.ts);
                st.last_hot = p.ts;
            }
            (true, Some(_)) => st.last_hot = p.ts,
            (false, Some(start)) => {
                windows.push(PressureWindow {
                    node: p.node,
                    start,
                    end: st.last_hot,
                });
                st.open = None;
            }
            (false, None) => {}
        }
    }
    for (node, st) in states {
        if let Some(start) = st.open {
            windows.push(PressureWindow {
                node,
                start,
                end: st.last_hot,
            });
        }
    }
    windows.sort_by_key(|w| (w.node, w.start));
    windows
}

/// The gridpoints at which a node's `irs.interrupts` counter increased.
fn interrupt_increases(run: &MetricsRun) -> Vec<(i64, u64)> {
    let mut last: BTreeMap<i64, i64> = BTreeMap::new();
    let mut increases = Vec::new();
    for p in &run.points {
        if p.metric != "irs.interrupts" {
            continue;
        }
        let prev = last.insert(p.node, p.value).unwrap_or(0);
        if p.value > prev {
            increases.push((p.node, p.ts));
        }
    }
    increases
}

/// Fraction of interrupt increases that land inside a pressure window
/// on the same node: `(inside, total)`. The paper's claim is that
/// interrupts fire *because of* pressure, so a healthy run aligns
/// nearly all of them.
pub fn phase_alignment(run: &MetricsRun, windows: &[PressureWindow]) -> (usize, usize) {
    let increases = interrupt_increases(run);
    let inside = increases
        .iter()
        .filter(|(node, ts)| {
            windows
                .iter()
                .any(|w| w.node == *node && w.start <= *ts && *ts <= w.end)
        })
        .count();
    (inside, increases.len())
}

fn kind_of(name: &str) -> MetricKind {
    Metric::from_name(name).map_or(MetricKind::Gauge, Metric::kind)
}

fn kind_tag(name: &str) -> &'static str {
    match kind_of(name) {
        MetricKind::Counter => "counter",
        MetricKind::Gauge => "gauge",
        MetricKind::Histogram => "histogram",
    }
}

/// Renders the full `metricsctl report` for a loaded dump.
pub fn report(runs: &[MetricsRun], threshold: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "metrics: {} run(s)", runs.len());
    for (i, run) in runs.iter().enumerate() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "== run {i}: {} (cadence {}, {} points, {} hists)",
            run.label,
            fmt_ms(run.cadence_ns),
            run.points.len(),
            run.hists.len(),
        );
        // Rollup: per metric, the final value per series and the peak
        // sampled value, in name order.
        let mut rollups: BTreeMap<&str, SeriesRollup> = BTreeMap::new();
        for p in &run.points {
            let r = rollups.entry(&p.metric).or_default();
            r.finals.insert(p.node, p.value);
            r.peak = r.peak.max(p.value);
            r.points += 1;
        }
        if !rollups.is_empty() {
            let _ = writeln!(out, "  rollup:");
            for (name, r) in &rollups {
                let total: i64 = r.finals.values().sum();
                let _ = writeln!(
                    out,
                    "    {name:<24} {:<9} series={:<3} points={:<5} final={total} peak={}",
                    kind_tag(name),
                    r.finals.len(),
                    r.points,
                    r.peak,
                );
            }
        }
        if !run.hists.is_empty() {
            let _ = writeln!(out, "  distributions:");
            for h in &run.hists {
                let _ = writeln!(
                    out,
                    "    {:<24} {:<8} {}",
                    h.metric,
                    node_name(h.node),
                    h.snap.tail_line(),
                );
            }
        }
        // Pressure windows and the pressure/interrupt phase alignment.
        let windows = pressure_windows(run, threshold);
        if !windows.is_empty() {
            let _ = writeln!(out, "  pressure (live/heap >= {threshold:.2}):");
            let mut by_node: BTreeMap<i64, Vec<&PressureWindow>> = BTreeMap::new();
            for w in &windows {
                by_node.entry(w.node).or_default().push(w);
            }
            for (node, ws) in by_node {
                let total: u64 = ws.iter().map(|w| w.end - w.start).sum();
                let _ = writeln!(
                    out,
                    "    {:<8} {} window(s), total {}, first @{}",
                    node_name(node),
                    ws.len(),
                    fmt_ms(total),
                    fmt_ms(ws[0].start),
                );
            }
        }
        let (inside, total) = phase_alignment(run, &windows);
        if let Some(pct) = (inside * 100).checked_div(total) {
            let _ = writeln!(
                out,
                "  phase alignment: {inside}/{total} interrupt increases inside pressure windows ({pct}%)",
            );
        }
    }
    out
}

/// Renders one matched run pair of the diff: per-series final values
/// and histogram tails side by side, changed series only (unchanged
/// ones are counted, not listed).
fn diff_pair(out: &mut String, ra: &MetricsRun, rb: &MetricsRun) {
    let finals = |r: &MetricsRun| {
        let mut m: BTreeMap<(String, i64), i64> = BTreeMap::new();
        for p in &r.points {
            m.insert((p.metric.clone(), p.node), p.value);
        }
        m
    };
    let fa = finals(ra);
    let fb = finals(rb);
    let mut keys: Vec<&(String, i64)> = fa.keys().chain(fb.keys()).collect();
    keys.sort();
    keys.dedup();
    let mut unchanged = 0usize;
    for key in keys {
        let (name, node) = key;
        let series = format!("{name}[{}]", node_name(*node));
        match (fa.get(key), fb.get(key)) {
            (Some(a), Some(b)) if a == b => unchanged += 1,
            (Some(a), Some(b)) => {
                let _ = writeln!(out, "  {series:<34} {a:>12} -> {b:<12} ({:+})", b - a);
            }
            (Some(a), None) => {
                let _ = writeln!(out, "  {series:<34} {a:>12} -> absent");
            }
            (None, Some(b)) => {
                let _ = writeln!(out, "  {series:<34} {:>12} -> {b}", "absent");
            }
            (None, None) => unreachable!(),
        }
    }
    if unchanged > 0 {
        let _ = writeln!(out, "  ({unchanged} series unchanged)");
    }
    fn hists(r: &MetricsRun) -> BTreeMap<(String, i64), &MetricsHist> {
        let mut m = BTreeMap::new();
        for h in &r.hists {
            m.insert((h.metric.clone(), h.node), h);
        }
        m
    }
    let ha = hists(ra);
    let hb = hists(rb);
    let mut keys: Vec<&(String, i64)> = ha.keys().chain(hb.keys()).collect();
    keys.sort();
    keys.dedup();
    for key in keys {
        let (name, node) = key;
        let series = format!("{name}[{}]", node_name(*node));
        let show = |h: Option<&&MetricsHist>| match h {
            Some(h) => format!("n={} p99={}", h.snap.count, fmt_ms(h.snap.p99)),
            None => "absent".to_string(),
        };
        let (a, b) = (ha.get(key), hb.get(key));
        let same = match (a, b) {
            (Some(x), Some(y)) => x.snap == y.snap && x.sum == y.sum,
            _ => false,
        };
        if same {
            let _ = writeln!(out, "  {series:<34} {} (unchanged)", show(a));
        } else {
            let _ = writeln!(out, "  {series:<34} {} -> {}", show(a), show(b));
        }
    }
}

/// Renders the two-dump A/B diff. Runs are matched by *label* (first
/// unmatched B run with the same label, in A order), not by position —
/// the same pairing rule as `tracectl diff`.
pub fn diff(a: &[MetricsRun], b: &[MetricsRun]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "diff: A has {} run(s), B has {} run(s)",
        a.len(),
        b.len()
    );
    let labels_match = a.len() == b.len() && a.iter().zip(b).all(|(ra, rb)| ra.label == rb.label);
    if !labels_match {
        let _ = writeln!(
            out,
            "warning: run labels differ between dumps; matching runs by label, not position"
        );
    }
    let mut used_b = vec![false; b.len()];
    for (i, ra) in a.iter().enumerate() {
        let matched = b
            .iter()
            .enumerate()
            .position(|(j, rb)| !used_b[j] && rb.label == ra.label);
        let _ = writeln!(out);
        match matched {
            Some(j) => {
                used_b[j] = true;
                if j == i {
                    let _ = writeln!(out, "== run {i}: A={} | B={}", ra.label, b[j].label);
                } else {
                    let _ = writeln!(
                        out,
                        "== run {i}: A={} | B={} (B run {j})",
                        ra.label, b[j].label
                    );
                }
                diff_pair(&mut out, ra, &b[j]);
            }
            None => {
                let _ = writeln!(out, "== run {i}: only in A ({})", ra.label);
            }
        }
    }
    for (j, rb) in b.iter().enumerate() {
        if !used_b[j] {
            let _ = writeln!(out);
            let _ = writeln!(out, "== run {j}: only in B ({})", rb.label);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_jsonl() -> String {
        concat!(
            "{\"run\":0,\"kind\":\"run\",\"label\":\"wc t4\",\"cadence_ns\":10000000,\"points\":8,\"hists\":1}\n",
            "{\"run\":0,\"kind\":\"point\",\"ts\":10000000,\"node\":0,\"metric\":\"mem.heap_bytes\",\"value\":1000}\n",
            "{\"run\":0,\"kind\":\"point\",\"ts\":10000000,\"node\":0,\"metric\":\"mem.live_bytes\",\"value\":500}\n",
            "{\"run\":0,\"kind\":\"point\",\"ts\":20000000,\"node\":0,\"metric\":\"mem.live_bytes\",\"value\":950}\n",
            "{\"run\":0,\"kind\":\"point\",\"ts\":20000000,\"node\":0,\"metric\":\"irs.interrupts\",\"value\":1}\n",
            "{\"run\":0,\"kind\":\"point\",\"ts\":30000000,\"node\":0,\"metric\":\"mem.live_bytes\",\"value\":920}\n",
            "{\"run\":0,\"kind\":\"point\",\"ts\":40000000,\"node\":0,\"metric\":\"mem.live_bytes\",\"value\":300}\n",
            "{\"run\":0,\"kind\":\"point\",\"ts\":50000000,\"node\":0,\"metric\":\"irs.interrupts\",\"value\":2}\n",
            "{\"run\":0,\"kind\":\"point\",\"ts\":50000000,\"node\":1,\"metric\":\"mem.gc_count\",\"value\":3}\n",
            "{\"run\":0,\"kind\":\"hist\",\"node\":-1,\"metric\":\"serve.latency_ns\",\"count\":2,\"sum\":30000000,\"min\":10000000,\"max\":20000000,\"p50\":10000000,\"p90\":20000000,\"p99\":20000000,\"p999\":20000000}\n",
        )
        .to_string()
    }

    #[test]
    fn loader_parses_runs_points_and_hists() {
        let runs = load_jsonl(&sample_jsonl()).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].label, "wc t4");
        assert_eq!(runs[0].cadence_ns, 10_000_000);
        assert_eq!(runs[0].points.len(), 8);
        assert_eq!(runs[0].hists.len(), 1);
        assert_eq!(runs[0].hists[0].snap.count, 2);
    }

    #[test]
    fn loader_rejects_orphans_and_garbage() {
        assert!(load_jsonl("{\"run\":0,\"kind\":\"point\",\"ts\":1}\n").is_err());
        assert!(
            load_jsonl("{\"run\":1,\"kind\":\"run\",\"label\":\"x\",\"cadence_ns\":1}\n").is_err()
        );
        assert!(load_jsonl("not json\n").is_err());
    }

    #[test]
    fn pressure_windows_open_and_close_on_threshold() {
        let runs = load_jsonl(&sample_jsonl()).unwrap();
        // live/heap: 0.5 @10ms, 0.95 @20ms, 0.92 @30ms, 0.3 @40ms.
        let w = pressure_windows(&runs[0], 0.9);
        assert_eq!(
            w,
            vec![PressureWindow {
                node: 0,
                start: 20_000_000,
                end: 30_000_000
            }]
        );
        // A lower threshold widens the window to the whole trace.
        let w = pressure_windows(&runs[0], 0.25);
        assert_eq!((w[0].start, w[0].end), (10_000_000, 40_000_000));
    }

    #[test]
    fn phase_alignment_counts_increases_inside_windows() {
        let runs = load_jsonl(&sample_jsonl()).unwrap();
        let w = pressure_windows(&runs[0], 0.9);
        // Interrupt increases at 20ms (inside) and 50ms (outside).
        assert_eq!(phase_alignment(&runs[0], &w), (1, 2));
    }

    #[test]
    fn report_renders_rollups_pressure_and_alignment() {
        let runs = load_jsonl(&sample_jsonl()).unwrap();
        let r = report(&runs, 0.9);
        assert!(
            r.contains("== run 0: wc t4 (cadence 10.000ms, 8 points, 1 hists)"),
            "{r}"
        );
        assert!(r.contains("mem.gc_count"), "{r}");
        assert!(r.contains("counter"), "{r}");
        assert!(r.contains("serve.latency_ns"), "{r}");
        assert!(r.contains("n=2"), "{r}");
        assert!(r.contains("pressure (live/heap >= 0.90):"), "{r}");
        assert!(
            r.contains("node0    1 window(s), total 10.000ms, first @20.000ms"),
            "{r}"
        );
        assert!(
            r.contains("phase alignment: 1/2 interrupt increases inside pressure windows (50%)"),
            "{r}"
        );
        // Same input, same bytes.
        assert_eq!(r, report(&runs, 0.9));
    }

    #[test]
    fn diff_reports_final_deltas_and_unchanged_counts() {
        let a = load_jsonl(&sample_jsonl()).unwrap();
        let mut b = a.clone();
        // Bump node1's gc count and drop the histogram.
        b[0].points.last_mut().unwrap().value = 5;
        b[0].hists.clear();
        let d = diff(&a, &b);
        assert!(d.contains("== run 0: A=wc t4 | B=wc t4"), "{d}");
        assert!(d.contains("mem.gc_count[node1]"), "{d}");
        assert!(d.contains("(+2)"), "{d}");
        assert!(d.contains("series unchanged)"), "{d}");
        assert!(d.contains("serve.latency_ns[cluster]"), "{d}");
        assert!(d.contains("-> absent"), "{d}");
    }

    #[test]
    fn diff_matches_runs_by_label_not_position() {
        let base = load_jsonl(&sample_jsonl()).unwrap();
        let mut ra = base[0].clone();
        ra.label = "alpha".to_string();
        let mut rb = base[0].clone();
        rb.label = "beta".to_string();
        let a = vec![ra.clone(), rb.clone()];
        let b = vec![rb, ra];
        let d = diff(&a, &b);
        assert!(d.contains("warning: run labels differ"), "{d}");
        assert!(d.contains("== run 0: A=alpha | B=alpha (B run 1)"), "{d}");
        assert!(d.contains("== run 1: A=beta | B=beta (B run 0)"), "{d}");
    }
}
