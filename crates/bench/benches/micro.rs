//! Criterion micro-benchmarks: wall-clock cost of the simulator's hot
//! paths (heap accounting, GC, scale loop, serialization policy) and of
//! small end-to-end runs. These measure the *simulator's* performance;
//! the paper's virtual-time results come from the table/figure binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use apps::hyracks_apps::{wc, HyracksParams};
use itask_core::{offer_serialized, Irs, IrsConfig, Scale, Tag, TaskGraph};
use simcluster::{NodeSim, NodeState};
use simcore::{ByteSize, NodeId, SimTime};
use simmem::{Heap, HeapConfig};
use workloads::webmap::WebmapSize;

fn bench_heap(c: &mut Criterion) {
    c.bench_function("heap/alloc_free_cycle", |b| {
        let mut heap = Heap::new(HeapConfig::with_capacity(ByteSize::mib(12)));
        let s = heap.create_space("bench");
        b.iter(|| {
            heap.alloc(s, ByteSize(256), SimTime::ZERO).unwrap();
            heap.free(s, ByteSize(256));
        });
    });

    c.bench_function("heap/full_gc_1mib_live", |b| {
        let mut heap = Heap::new(HeapConfig::with_capacity(ByteSize::mib(12)));
        let s = heap.create_space("bench");
        heap.alloc(s, ByteSize::mib(1), SimTime::ZERO).unwrap();
        b.iter(|| black_box(heap.force_full_gc(SimTime::ZERO)));
    });
}

fn bench_generators(c: &mut Criterion) {
    c.bench_function("workloads/webmap_block_128k", |b| {
        let cfg = workloads::webmap::WebmapConfig::preset(WebmapSize::G3, 42);
        b.iter(|| black_box(cfg.block(0, ByteSize::kib(128))));
    });
    c.bench_function("workloads/wikipedia_block_128k", |b| {
        let cfg = workloads::wikipedia::WikipediaConfig::sample(42);
        b.iter(|| black_box(cfg.block(0, ByteSize::kib(128))));
    });
}

fn bench_irs(c: &mut Criterion) {
    // One full interruptible count of 20k tuples under pressure.
    c.bench_function("irs/pressured_count_20k_tuples", |b| {
        b.iter(|| {
            #[derive(Default)]
            struct T {
                n: u64,
            }
            impl itask_core::TupleTask for T {
                type In = apps::CountMid;
                fn initialize(
                    &mut self,
                    _: &mut itask_core::TaskCx<'_, '_>,
                ) -> simcore::SimResult<()> {
                    Ok(())
                }
                fn process(
                    &mut self,
                    cx: &mut itask_core::TaskCx<'_, '_>,
                    _t: &apps::CountMid,
                ) -> simcore::SimResult<()> {
                    self.n += 1;
                    cx.alloc_out(ByteSize(32))?;
                    Ok(())
                }
                fn interrupt(
                    &mut self,
                    cx: &mut itask_core::TaskCx<'_, '_>,
                ) -> simcore::SimResult<()> {
                    let n = std::mem::take(&mut self.n);
                    cx.emit_final(Box::new(n), ByteSize(8))
                }
                fn cleanup(
                    &mut self,
                    cx: &mut itask_core::TaskCx<'_, '_>,
                ) -> simcore::SimResult<()> {
                    let n = std::mem::take(&mut self.n);
                    cx.emit_final(Box::new(n), ByteSize(8))
                }
            }
            let mut sim = NodeSim::new(NodeState::new(
                NodeId(0),
                4,
                ByteSize::kib(256),
                ByteSize::mib(64),
            ));
            let mut graph = TaskGraph::new();
            let t = graph.add_task("t", || Box::new(Scale(T::default())));
            let mut irs = Irs::new(graph, IrsConfig::default());
            let handle = irs.handle();
            for _ in 0..10 {
                let items: Vec<apps::CountMid> =
                    (0..2_000).map(|i| apps::CountMid::one(i, 64)).collect();
                offer_serialized(&handle, sim.node_mut(), t, Tag(0), items).unwrap();
            }
            irs.run_to_idle(&mut sim).unwrap();
            black_box(irs.stats());
        });
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end_wc_3gb");
    g.sample_size(10);
    g.bench_function("regular", |b| {
        let p = HyracksParams::default();
        b.iter(|| black_box(wc::run_regular(WebmapSize::G3, &p).ok()));
    });
    g.bench_function("itask", |b| {
        let p = HyracksParams::default();
        b.iter(|| black_box(wc::run_itask(WebmapSize::G3, &p).ok()));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_heap,
    bench_generators,
    bench_irs,
    bench_end_to_end
);
criterion_main!(benches);
