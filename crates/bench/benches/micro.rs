//! Criterion micro-benchmarks: wall-clock cost of the simulator's hot
//! paths (heap accounting, GC, scale loop, serialization policy) and of
//! small end-to-end runs. These measure the *simulator's* performance;
//! the paper's virtual-time results come from the table/figure binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use apps::hyracks_apps::{wc, HyracksParams};
use itask_core::queue::PartitionQueue;
use itask_core::{offer_serialized, Irs, IrsConfig, Scale, Tag, TaskGraph, Tuple, VecPartition};
use simcluster::{NodeSim, NodeState};
use simcore::{ByteSize, EventLog, NodeId, PartitionId, SimTime, SpaceId, TaskId};
use simmem::{Heap, HeapConfig};
use workloads::webmap::WebmapSize;

fn bench_heap(c: &mut Criterion) {
    c.bench_function("heap/alloc_free_cycle", |b| {
        let mut heap = Heap::new(HeapConfig::with_capacity(ByteSize::mib(12)));
        let s = heap.create_space("bench");
        b.iter(|| {
            heap.alloc(s, ByteSize(256), SimTime::ZERO).unwrap();
            heap.free(s, ByteSize(256));
        });
    });

    c.bench_function("heap/full_gc_1mib_live", |b| {
        let mut heap = Heap::new(HeapConfig::with_capacity(ByteSize::mib(12)));
        let s = heap.create_space("bench");
        heap.alloc(s, ByteSize::mib(1), SimTime::ZERO).unwrap();
        b.iter(|| black_box(heap.force_full_gc(SimTime::ZERO)));
    });
}

struct Blob(u64);

impl Tuple for Blob {
    fn heap_bytes(&self) -> u64 {
        self.0
    }
}

fn queue_part(id: u32, task: u32, tag: u64) -> itask_core::PartitionBox {
    let items: Vec<Blob> = (0..4).map(|_| Blob(128)).collect();
    Box::new(VecPartition::new(
        PartitionId(id),
        TaskId(task),
        Tag(tag),
        items,
        SpaceId(id),
    ))
}

fn bench_queue(c: &mut Criterion) {
    // The scheduler's per-quantum pattern: push a batch, scan one task's
    // metadata, then drain it group by group.
    c.bench_function("queue/push_scan_take_512", |b| {
        b.iter(|| {
            let mut q = PartitionQueue::new();
            for i in 0..512u32 {
                q.push(queue_part(i, (i % 8) / 4, (i % 4) as u64));
            }
            let picked = q
                .metas_for(TaskId(0))
                .min_by_key(|m| (!m.in_memory(), m.id))
                .map(|m| m.id);
            black_box(q.take(picked.unwrap()));
            for tag in 0..4u64 {
                black_box(q.take_group(TaskId(0), Tag(tag)).len());
                black_box(q.take_group(TaskId(1), Tag(tag)).len());
            }
            black_box(q.len());
        });
    });

    // Point removals interleaved with pushes (tombstone + compaction
    // path).
    c.bench_function("queue/interleaved_take_by_id_512", |b| {
        b.iter(|| {
            let mut q = PartitionQueue::new();
            for i in 0..512u32 {
                q.push(queue_part(i, 1, 0));
                if i % 2 == 1 {
                    black_box(q.take(PartitionId(i - 1)));
                }
            }
            black_box(q.len());
        });
    });
}

fn bench_event_log(c: &mut Criterion) {
    // A fig3-style trace: a handful of series, many appends each.
    c.bench_function("log/record_8_series_4k_samples", |b| {
        b.iter(|| {
            let mut log = EventLog::new();
            for i in 0..4096u64 {
                let name = match i % 8 {
                    0 => "heap.used",
                    1 => "heap.live",
                    2 => "gc.pause",
                    3 => "queue.len",
                    4 => "ser.bytes",
                    5 => "deser.bytes",
                    6 => "throughput",
                    _ => "tasks.active",
                };
                log.record(name, SimTime::from_nanos(i * 1_000_000), i as f64);
            }
            black_box(log.all().len());
        });
    });
}

fn bench_generators(c: &mut Criterion) {
    c.bench_function("workloads/webmap_block_128k", |b| {
        let cfg = workloads::webmap::WebmapConfig::preset(WebmapSize::G3, 42);
        b.iter(|| black_box(cfg.block(0, ByteSize::kib(128))));
    });
    c.bench_function("workloads/wikipedia_block_128k", |b| {
        let cfg = workloads::wikipedia::WikipediaConfig::sample(42);
        b.iter(|| black_box(cfg.block(0, ByteSize::kib(128))));
    });
}

fn bench_irs(c: &mut Criterion) {
    // One full interruptible count of 20k tuples under pressure.
    c.bench_function("irs/pressured_count_20k_tuples", |b| {
        b.iter(|| {
            #[derive(Default)]
            struct T {
                n: u64,
            }
            impl itask_core::TupleTask for T {
                type In = apps::CountMid;
                fn initialize(
                    &mut self,
                    _: &mut itask_core::TaskCx<'_, '_>,
                ) -> simcore::SimResult<()> {
                    Ok(())
                }
                fn process(
                    &mut self,
                    cx: &mut itask_core::TaskCx<'_, '_>,
                    _t: &apps::CountMid,
                ) -> simcore::SimResult<()> {
                    self.n += 1;
                    cx.alloc_out(ByteSize(32))?;
                    Ok(())
                }
                fn interrupt(
                    &mut self,
                    cx: &mut itask_core::TaskCx<'_, '_>,
                ) -> simcore::SimResult<()> {
                    let n = std::mem::take(&mut self.n);
                    cx.emit_final(Box::new(n), ByteSize(8))
                }
                fn cleanup(
                    &mut self,
                    cx: &mut itask_core::TaskCx<'_, '_>,
                ) -> simcore::SimResult<()> {
                    let n = std::mem::take(&mut self.n);
                    cx.emit_final(Box::new(n), ByteSize(8))
                }
            }
            let mut sim = NodeSim::new(NodeState::new(
                NodeId(0),
                4,
                ByteSize::kib(256),
                ByteSize::mib(64),
            ));
            let mut graph = TaskGraph::new();
            let t = graph.add_task("t", || Box::new(Scale(T::default())));
            let mut irs = Irs::new(graph, IrsConfig::default());
            let handle = irs.handle();
            for _ in 0..10 {
                let items: Vec<apps::CountMid> =
                    (0..2_000).map(|i| apps::CountMid::one(i, 64)).collect();
                offer_serialized(&handle, sim.node_mut(), t, Tag(0), items).unwrap();
            }
            irs.run_to_idle(&mut sim).unwrap();
            black_box(irs.stats());
        });
    });
}

fn bench_service(c: &mut Criterion) {
    use simserve::{
        AdmissionConfig, AdmissionController, Arrival, ClusterView, PolicyKind, QuantileSketch,
    };
    use std::collections::BTreeMap;

    // The admission controller's steady-state loop: enqueue a wave of
    // arrivals across tenants, drain under the policy, credit service.
    for policy in [PolicyKind::Fifo, PolicyKind::WeightedFair] {
        c.bench_function(
            &format!("service/admission_churn_256_{}", policy.label()),
            |b| {
                let view = ClusterView {
                    active: 0,
                    min_free_ratio: 0.8,
                    any_reduce_signal: false,
                    now: SimTime::ZERO,
                };
                b.iter(|| {
                    let cfg = AdmissionConfig {
                        policy,
                        max_active: usize::MAX,
                        ..AdmissionConfig::default()
                    };
                    let mut ctl = AdmissionController::new(cfg, BTreeMap::new());
                    for i in 0..256u32 {
                        let at = SimTime::from_nanos(i as u64);
                        ctl.enqueue_arrival(
                            &Arrival {
                                at,
                                tenant: i % 8,
                                seq: i / 8,
                                kind: simserve::JobKind::DegreeCount,
                                dataset_seed: i as u64,
                                deadline: None,
                            },
                            at,
                        );
                    }
                    while let Some(job) = ctl.next(view) {
                        ctl.credit_served(job.tenant, 1_000);
                        black_box(job.seq);
                    }
                    black_box(ctl.queued());
                });
            },
        );
    }

    // Pop latency against a standing population: the sub-linear-growth
    // claim of the indexed admission plane. Setup enqueues n tenants
    // once (outside b.iter); each iteration is one steady-state
    // pop → credit → requeue cycle against the full population, so a
    // per-decision cost that scales with n (the old linear scan) shows
    // up as 10^4x growth from 1e2 to 1e6 instead of log-factor growth.
    for n in [100u32, 10_000, 1_000_000] {
        c.bench_function(&format!("service/admission_pop_wfair_{n}t"), |b| {
            use simserve::WeightRule;
            let cfg = AdmissionConfig {
                policy: PolicyKind::WeightedFair,
                max_active: usize::MAX,
                ..AdmissionConfig::default()
            };
            let rule = WeightRule {
                premium_every: 10,
                premium_weight: 8,
            };
            let mut ctl = AdmissionController::with_weight_rule(cfg, rule);
            for i in 0..n {
                let at = SimTime::from_nanos(i as u64);
                ctl.enqueue_arrival(
                    &Arrival {
                        at,
                        tenant: i,
                        seq: 0,
                        kind: simserve::JobKind::DegreeCount,
                        dataset_seed: i as u64,
                        deadline: None,
                    },
                    at,
                );
            }
            let view = ClusterView {
                active: 0,
                min_free_ratio: 0.8,
                any_reduce_signal: false,
                now: SimTime::from_nanos(n as u64),
            };
            let mut served = 0u64;
            b.iter(|| {
                let job = ctl.next(view).expect("population never drains");
                served += 1_000;
                ctl.credit_served(job.tenant, served);
                ctl.requeue(job, view.now);
            });
            black_box(ctl.queued());
        });
    }

    // Sketch ingestion + quantile walk at service scale.
    c.bench_function("service/sketch_insert_4k_quantiles", |b| {
        b.iter(|| {
            let mut s = QuantileSketch::new(128);
            for i in 0..4_096u64 {
                s.insert(i.wrapping_mul(2654435761) % 1_000_000);
            }
            black_box((s.quantile(0.5), s.quantile(0.95), s.quantile(0.99)));
        });
    });
}

/// A fixed-cost compute body for round-loop benchmarks.
struct Spin {
    rounds: u64,
}

impl simcluster::Work for Spin {
    fn step(&mut self, cx: &mut simcluster::WorkCx<'_>) -> simcluster::StepOutcome {
        if self.rounds == 0 {
            return simcluster::StepOutcome::Finished;
        }
        self.rounds -= 1;
        let left = cx.remaining();
        cx.charge(left);
        simcluster::StepOutcome::Ran
    }

    fn label(&self) -> String {
        "spin".into()
    }
}

fn spin_cluster(nodes: usize, threads: usize, rounds: u64) -> simcluster::Cluster {
    let mut cluster = simcluster::Cluster::new(simcluster::ClusterConfig {
        nodes,
        cores: 4,
        heap_per_node: ByteSize::mib(64),
        ..simcluster::ClusterConfig::default()
    });
    for n in 0..nodes {
        let sim = cluster.sim(NodeId(n as u32));
        for _ in 0..threads {
            sim.spawn(Box::new(Spin { rounds }));
        }
    }
    cluster
}

fn bench_shard(c: &mut Criterion) {
    use simcluster::ShardExecutor;

    // The serial (inline) round loop: the pre-shard hot path that the
    // `--shards 1` default must not regress.
    c.bench_function("shard/serial_round_loop_8n", |b| {
        b.iter(|| {
            let mut cluster = spin_cluster(8, 4, 50);
            let mut exec = ShardExecutor::with_shards(1);
            let nodes: Vec<NodeId> = (0..8).map(|n| NodeId(n as u32)).collect();
            loop {
                let live: Vec<NodeId> = nodes
                    .iter()
                    .copied()
                    .filter(|&n| cluster.sim(n).live_count() > 0)
                    .collect();
                if live.is_empty() {
                    break;
                }
                black_box(exec.run_round(&mut cluster, &live, true).aborted);
            }
            black_box(cluster.elapsed());
        });
    });

    // The pooled path: per-round cost of shipping nodes to the worker
    // pool, the barrier, and the deterministic merge-back. On a 1-core
    // host this measures pure overhead versus the serial loop above.
    for shards in [2usize, 4] {
        c.bench_function(&format!("shard/pooled_round_loop_8n_{shards}s"), |b| {
            b.iter(|| {
                let mut cluster = spin_cluster(8, 4, 50);
                let mut exec = ShardExecutor::with_shards(shards);
                let nodes: Vec<NodeId> = (0..8).map(|n| NodeId(n as u32)).collect();
                loop {
                    let live: Vec<NodeId> = nodes
                        .iter()
                        .copied()
                        .filter(|&n| cluster.sim(n).live_count() > 0)
                        .collect();
                    if live.is_empty() {
                        break;
                    }
                    black_box(exec.run_round(&mut cluster, &live, true).aborted);
                }
                black_box(cluster.elapsed());
            });
        });
    }

    // Barrier + merge in isolation: single-round dispatches over nodes
    // whose threads never finish, so every iteration pays exactly one
    // ship/run/merge cycle per node.
    c.bench_function("shard/barrier_merge_2s_8n", |b| {
        let mut cluster = spin_cluster(8, 1, u64::MAX);
        let mut exec = ShardExecutor::with_shards(2);
        let nodes: Vec<NodeId> = (0..8).map(|n| NodeId(n as u32)).collect();
        b.iter(|| {
            black_box(exec.run_round(&mut cluster, &nodes, false).reports.len());
        });
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end_wc_3gb");
    g.sample_size(10);
    g.bench_function("regular", |b| {
        let p = HyracksParams::default();
        b.iter(|| black_box(wc::run_regular(WebmapSize::G3, &p).ok()));
    });
    g.bench_function("itask", |b| {
        let p = HyracksParams::default();
        b.iter(|| black_box(wc::run_itask(WebmapSize::G3, &p).ok()));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_heap,
    bench_queue,
    bench_event_log,
    bench_generators,
    bench_irs,
    bench_service,
    bench_shard,
    bench_end_to_end
);
criterion_main!(benches);
