//! Golden-output snapshot tests for the bench binaries.
//!
//! Each test runs a bench binary in its quick mode and diffs its stdout
//! against a checked-in snapshot under `tests/golden/` at the workspace
//! root. The binaries print only virtual-time results on stdout
//! (wall-clock progress lines go to stderr), so the snapshots are
//! byte-stable across hosts, `--jobs` counts, and host-side
//! optimisations — any diff means the simulation itself changed.
//!
//! To regenerate after an intentional behaviour change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --release -p itask-bench --test golden
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Run `bin` with `args`, capture stdout, and compare to the snapshot.
///
/// Sidecar sweep logs are redirected to a scratch dir via
/// `ITASK_BENCH_RESULTS` so the test never dirties `bench_results/`.
fn check_golden(bin: &str, args: &[&str], golden_name: &str) {
    let scratch = std::env::temp_dir().join(format!("itask-golden-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");

    let out = Command::new(bin)
        .args(args)
        .env("ITASK_BENCH_RESULTS", &scratch)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} exited with {}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let actual = String::from_utf8(out.stdout).expect("bench stdout is UTF-8");

    let path = golden_dir().join(golden_name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &actual).expect("write golden snapshot");
        eprintln!("updated {}", path.display());
        return;
    }

    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test --release -p itask-bench --test golden",
            path.display()
        )
    });
    if expected != actual {
        let mut first_diff = None;
        for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
            if e != a {
                first_diff = Some((i + 1, e.to_string(), a.to_string()));
                break;
            }
        }
        let detail = match first_diff {
            Some((line, e, a)) => {
                format!("first differing line {line}:\n  golden: {e}\n  actual: {a}")
            }
            None => format!(
                "line counts differ: golden {} vs actual {}",
                expected.lines().count(),
                actual.lines().count()
            ),
        };
        panic!(
            "{bin} {args:?} stdout diverged from {}\n{detail}\n\
             If the change is intentional, regenerate with UPDATE_GOLDEN=1.",
            path.display()
        );
    }
}

#[test]
fn golden_service_quick() {
    check_golden(
        env!("CARGO_BIN_EXE_service"),
        &["--quick"],
        "service_quick.txt",
    );
}

#[test]
fn golden_faults_wc() {
    check_golden(
        env!("CARGO_BIN_EXE_faults"),
        &["--wc-only"],
        "faults_wc.txt",
    );
}

#[test]
fn golden_tracectl_faults_wc() {
    // Two stages: a traced faults sweep, then `tracectl report` over
    // the dump. The report is pure virtual-time aggregation, so its
    // stdout is as byte-stable as the table itself.
    let scratch = std::env::temp_dir().join(format!("itask-golden-trace-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    let trace = scratch.join("faults_wc.json");
    let out = Command::new(env!("CARGO_BIN_EXE_faults"))
        .args(["--wc-only", "--trace"])
        .arg(&trace)
        .env("ITASK_BENCH_RESULTS", &scratch)
        .output()
        .expect("spawn faults");
    assert!(
        out.status.success(),
        "faults --wc-only --trace exited with {}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    check_golden(
        env!("CARGO_BIN_EXE_tracectl"),
        &["report", trace.to_str().expect("utf-8 scratch path")],
        "tracectl_faults_wc.txt",
    );
}

#[test]
fn golden_metricsctl_faults_wc() {
    // Two stages: a metered faults sweep, then `metricsctl report` over
    // the dump. The report is pure virtual-time aggregation, so its
    // stdout is as byte-stable as the table itself.
    let scratch = std::env::temp_dir().join(format!("itask-golden-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    let metrics = scratch.join("faults_wc_metrics.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_faults"))
        .args(["--wc-only", "--metrics"])
        .arg(&metrics)
        .env("ITASK_BENCH_RESULTS", &scratch)
        .output()
        .expect("spawn faults");
    assert!(
        out.status.success(),
        "faults --wc-only --metrics exited with {}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    check_golden(
        env!("CARGO_BIN_EXE_metricsctl"),
        &["report", metrics.to_str().expect("utf-8 scratch path")],
        "metricsctl_faults_wc.txt",
    );
}

#[test]
fn golden_overload_quick() {
    check_golden(
        env!("CARGO_BIN_EXE_overload"),
        &["--quick"],
        "overload_quick.txt",
    );
}

#[test]
fn golden_service_scale_quick() {
    // The million-tenant admission plane's snapshot: lazy 10^4-tenant
    // population, 4 admission shards, shard-merged sketches. Pins the
    // indexed WFQ order, the lazy arrival stream, and the shard-order
    // sketch merge all at once.
    check_golden(
        env!("CARGO_BIN_EXE_service"),
        &["--scale", "--quick"],
        "service_scale_quick.txt",
    );
}

#[test]
fn golden_service_scale_quick_shards2() {
    check_golden(
        env!("CARGO_BIN_EXE_service"),
        &["--scale", "--quick", "--shards", "2"],
        "service_scale_quick.txt",
    );
}

#[test]
fn golden_smr_quick() {
    check_golden(env!("CARGO_BIN_EXE_smr"), &["--quick"], "smr_quick.txt");
}

// The same snapshots re-checked on the pooled two-shard executor: the
// shard count must be unobservable in every golden surface.

#[test]
fn golden_service_quick_shards2() {
    check_golden(
        env!("CARGO_BIN_EXE_service"),
        &["--quick", "--shards", "2"],
        "service_quick.txt",
    );
}

#[test]
fn golden_faults_wc_shards2() {
    check_golden(
        env!("CARGO_BIN_EXE_faults"),
        &["--wc-only", "--shards", "2"],
        "faults_wc.txt",
    );
}

#[test]
fn golden_overload_quick_shards2() {
    check_golden(
        env!("CARGO_BIN_EXE_overload"),
        &["--quick", "--shards", "2"],
        "overload_quick.txt",
    );
}

#[test]
fn golden_smr_quick_shards2() {
    check_golden(
        env!("CARGO_BIN_EXE_smr"),
        &["--quick", "--shards", "2"],
        "smr_quick.txt",
    );
}

#[test]
fn golden_table5_quick_wc_shards2() {
    if cfg!(debug_assertions) {
        eprintln!("skipping table5 golden in debug mode; run with --release to cover it");
        return;
    }
    check_golden(
        env!("CARGO_BIN_EXE_table5"),
        &["--quick", "wc", "--shards", "2"],
        "table5_quick_wc.txt",
    );
}

#[test]
fn golden_table5_quick_wc() {
    // ~10s in release but minutes in debug; the CI golden job runs the
    // suite with --release so this stays covered there.
    if cfg!(debug_assertions) {
        eprintln!("skipping table5 golden in debug mode; run with --release to cover it");
        return;
    }
    check_golden(
        env!("CARGO_BIN_EXE_table5"),
        &["--quick", "wc"],
        "table5_quick_wc.txt",
    );
}
