//! Regression suite: the intra-run shard executor must be unobservable.
//!
//! Each bench binary runs once with `--shards 1` (the inline serial
//! path) and once with `--shards 4` (the pooled lockstep path); stdout
//! and — where exercised — the trace files must be byte-identical.
//! Every simulation is a deterministic virtual-time world; shards only
//! change which host thread advances a node, never what it computes or
//! in what canonical order its events merge.

use std::path::PathBuf;
use std::process::Command;

/// Runs `bin args --shards <n>` (plus `--trace` when `trace` is set)
/// and returns `(stdout, chrome json, jsonl)`.
fn run_sharded(
    bin: &str,
    args: &[&str],
    shards: usize,
    trace: bool,
    tag: &str,
) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    let scratch = std::env::temp_dir().join(format!(
        "itask-shards-{}-{tag}-s{shards}",
        std::process::id()
    ));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    let trace_path: PathBuf = scratch.join("trace.json");
    let mut cmd = Command::new(bin);
    cmd.args(args)
        .arg("--shards")
        .arg(shards.to_string())
        .env("ITASK_BENCH_RESULTS", &scratch);
    if trace {
        cmd.arg("--trace").arg(&trace_path);
    }
    let out = cmd
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} --shards {shards} exited with {}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let (chrome, jsonl) = if trace {
        (
            std::fs::read(&trace_path).expect("chrome trace written"),
            std::fs::read(format!("{}.jsonl", trace_path.display())).expect("jsonl twin written"),
        )
    } else {
        (Vec::new(), Vec::new())
    };
    (out.stdout, chrome, jsonl)
}

fn assert_shards_invariant(bin: &str, args: &[&str], trace: bool, tag: &str) {
    let (o1, c1, l1) = run_sharded(bin, args, 1, trace, tag);
    let (o4, c4, l4) = run_sharded(bin, args, 4, trace, tag);
    assert!(
        o1 == o4,
        "{tag}: stdout differs between --shards 1 and --shards 4"
    );
    assert!(
        c1 == c4,
        "{tag}: chrome trace differs between --shards 1 and --shards 4"
    );
    assert!(
        l1 == l4,
        "{tag}: jsonl trace differs between --shards 1 and --shards 4"
    );
}

#[test]
fn shards_invariant_service_quick() {
    assert_shards_invariant(env!("CARGO_BIN_EXE_service"), &["--quick"], true, "service");
}

#[test]
fn shards_invariant_overload_quick() {
    assert_shards_invariant(
        env!("CARGO_BIN_EXE_overload"),
        &["--quick"],
        true,
        "overload",
    );
}

#[test]
fn shards_invariant_faults_wc() {
    // Crash plans shard the crash-free windows between scheduled
    // crashes; the fault sweeps also cover slowdown/partition plans on
    // the pooled path, so the flag must be a no-op either way.
    assert_shards_invariant(env!("CARGO_BIN_EXE_faults"), &["--wc-only"], true, "faults");
}

#[test]
fn shards_invariant_smr_quick() {
    // The SMR quorum rides the lockstep executor directly (one replica
    // per node, consensus between rounds), so commit latencies, view
    // changes and the causal trace must all be shard-invariant.
    assert_shards_invariant(env!("CARGO_BIN_EXE_smr"), &["--quick"], true, "smr");
}

#[test]
fn shards_invariant_table5_quick_wc() {
    // Minutes in debug; the CI golden job runs tests with --release.
    if cfg!(debug_assertions) {
        eprintln!("skipping table5 shard determinism in debug mode");
        return;
    }
    assert_shards_invariant(
        env!("CARGO_BIN_EXE_table5"),
        &["--quick", "wc"],
        true,
        "table5",
    );
}

#[test]
fn shards_env_var_matches_flag() {
    // `ITASK_BENCH_SHARDS=2` must behave exactly like `--shards 2`.
    let scratch = std::env::temp_dir().join(format!("itask-shards-env-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    let run = |env_val: Option<&str>, flag: bool| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_service"));
        cmd.arg("--quick").env("ITASK_BENCH_RESULTS", &scratch);
        if let Some(v) = env_val {
            cmd.env("ITASK_BENCH_SHARDS", v);
        }
        if flag {
            cmd.args(["--shards", "2"]);
        }
        let out = cmd.output().expect("spawn service");
        assert!(out.status.success());
        out.stdout
    };
    let via_flag = run(None, true);
    let via_env = run(Some("2"), false);
    assert!(via_flag == via_env, "env var and flag outputs differ");
}
