//! Regression test: the parallel sweep executor must not change results.
//!
//! Runs a reduced table5-style sweep (WC regular, 3GB webmap, a 2×2
//! threads × granularity grid) once serially and once with four
//! workers, then checks the rendered table text, the CSV bytes, and the
//! per-run results are identical. Each simulation is its own
//! single-threaded virtual-time world, so worker count must be
//! unobservable everywhere except wall-clock.

use apps::hyracks_apps::{wc, HyracksParams};
use itask_bench::sweep;
use itask_bench::{cols, write_csv};
use simcore::{ByteSize, SimDuration, SCALE};
use workloads::webmap::WebmapSize;

const THREADS: [usize; 2] = [1, 2];
const GRANS_KIB: [u64; 2] = [16, 32];

/// One full grid pass; mirrors table5's `scalability` selection replay.
fn grid(jobs: usize) -> (Vec<(bool, SimDuration)>, Vec<Vec<String>>) {
    let mut specs = Vec::new();
    for &t in &THREADS {
        for &g in &GRANS_KIB {
            specs.push(sweep::spec(format!("det wc 3GB t{t} g{g}KiB"), move || {
                let p = HyracksParams {
                    threads: t,
                    granularity: ByteSize::kib(g),
                    ..HyracksParams::default()
                };
                let s = wc::run_regular(WebmapSize::G3, &p);
                (s.ok(), s.report.elapsed)
            }));
        }
    }
    let outcomes = sweep::run_all(jobs, specs);
    let results: Vec<(bool, SimDuration)> = outcomes.iter().map(|o| o.result).collect();
    // Replay in grid order, exactly like the serial loop would.
    let mut rows = Vec::new();
    let mut it = results.iter();
    for &t in &THREADS {
        for &g in &GRANS_KIB {
            let &(ok, e) = it.next().unwrap();
            rows.push(vec![
                t.to_string(),
                format!("{g}KB"),
                if ok {
                    format!("{:.1}s", e.as_secs_f64() * SCALE as f64)
                } else {
                    "OME".into()
                },
            ]);
        }
    }
    (results, rows)
}

/// Renders rows the way `print_table` does, as a string.
fn render(header: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = fmt_row(header);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let (serial_results, serial_rows) = grid(1);
    let (par_results, par_rows) = grid(4);

    assert_eq!(
        serial_results, par_results,
        "per-run results must not depend on worker count"
    );

    let header = cols(&["#K", "#T", "time"]);
    let serial_text = render(&header, &serial_rows);
    let par_text = render(&header, &par_rows);
    assert_eq!(serial_text, par_text, "table text must be byte-identical");

    let dir = std::env::temp_dir().join(format!("itask-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("serial.csv");
    let b = dir.join("parallel.csv");
    write_csv(a.to_str().unwrap(), &header, &serial_rows).unwrap();
    write_csv(b.to_str().unwrap(), &header, &par_rows).unwrap();
    let (ab, bb) = (std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
    assert!(!ab.is_empty());
    assert_eq!(ab, bb, "CSV bytes must be identical");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn executor_preserves_spec_order_under_oversubscription() {
    // Many more specs than workers, uneven job sizes: outcomes must
    // still come back in submission order with matching labels.
    let specs: Vec<_> = (0..32usize)
        .map(|i| {
            sweep::spec(format!("order {i}"), move || {
                // Skewed busy-work so completion order differs from
                // submission order.
                let spins = if i % 7 == 0 { 40_000 } else { 500 };
                let mut x = i as u64;
                for _ in 0..spins {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                }
                (i, x)
            })
        })
        .collect();
    let outcomes = sweep::run_all(4, specs);
    assert_eq!(outcomes.len(), 32);
    for (i, o) in outcomes.iter().enumerate() {
        assert_eq!(o.label, format!("order {i}"));
        assert_eq!(o.result.0, i);
    }
}
