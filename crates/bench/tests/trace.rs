//! Trace determinism and schema tests (§ Observability).
//!
//! The `--trace` dump is part of the deterministic surface: the merged
//! event stream must be byte-identical whatever `--jobs` is, the Chrome
//! JSON must parse, and every causal link must resolve to an event
//! emitted earlier in the same run.

use std::path::PathBuf;
use std::process::Command;

use itask_bench::tracefmt::{self, Json};

/// Runs `bin args --trace <scratch>/trace.json --jobs <jobs>` and
/// returns the bytes of (chrome json, jsonl).
fn traced_run(bin: &str, args: &[&str], jobs: usize, tag: &str) -> (Vec<u8>, Vec<u8>) {
    let scratch =
        std::env::temp_dir().join(format!("itask-trace-{}-{tag}-j{jobs}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    let trace: PathBuf = scratch.join("trace.json");
    let out = Command::new(bin)
        .args(args)
        .arg("--jobs")
        .arg(jobs.to_string())
        .arg("--trace")
        .arg(&trace)
        .env("ITASK_BENCH_RESULTS", &scratch)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} --jobs {jobs} exited with {}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let chrome = std::fs::read(&trace).expect("chrome trace written");
    let jsonl = std::fs::read(format!("{}.jsonl", trace.display())).expect("jsonl twin written");
    (chrome, jsonl)
}

fn assert_jobs_invariant(bin: &str, args: &[&str], tag: &str) {
    let (c1, l1) = traced_run(bin, args, 1, tag);
    let (c4, l4) = traced_run(bin, args, 4, tag);
    assert!(
        c1 == c4,
        "{tag}: chrome trace differs between --jobs 1 and --jobs 4"
    );
    assert!(
        l1 == l4,
        "{tag}: jsonl trace differs between --jobs 1 and --jobs 4"
    );
}

#[test]
fn trace_identical_across_jobs_service_quick() {
    assert_jobs_invariant(env!("CARGO_BIN_EXE_service"), &["--quick"], "service");
}

#[test]
fn trace_identical_across_jobs_overload_quick() {
    assert_jobs_invariant(env!("CARGO_BIN_EXE_overload"), &["--quick"], "overload");
}

#[test]
fn trace_identical_across_jobs_table5_quick_wc() {
    // Minutes in debug; the CI golden job runs tests with --release.
    if cfg!(debug_assertions) {
        eprintln!("skipping table5 trace determinism in debug mode");
        return;
    }
    assert_jobs_invariant(env!("CARGO_BIN_EXE_table5"), &["--quick", "wc"], "table5");
}

/// Chrome JSON schema: parses, has the trace-event envelope, every
/// event row carries the required members with the right shapes.
#[test]
fn trace_chrome_schema_is_valid() {
    let (chrome, jsonl) = traced_run(env!("CARGO_BIN_EXE_faults"), &["--wc-only"], 2, "schema");
    let doc = tracefmt::parse(std::str::from_utf8(&chrome).expect("utf-8"))
        .expect("chrome trace parses as JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ns")
    );
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace has events");
    let mut spans = 0u64;
    let mut instants = 0u64;
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph member");
        assert!(e.get("pid").and_then(Json::as_i64).is_some(), "pid member");
        assert!(e.get("tid").and_then(Json::as_i64).is_some(), "tid member");
        match ph {
            "M" => continue, // process/thread name metadata
            "X" => {
                spans += 1;
                assert!(e.get("dur").and_then(Json::as_u64).unwrap_or(0) > 0);
            }
            "i" => {
                instants += 1;
                assert_eq!(e.get("s").and_then(Json::as_str), Some("t"));
            }
            other => panic!("unexpected phase {other:?}"),
        }
        assert!(e.get("ts").and_then(Json::as_u64).is_some(), "ts member");
        assert!(
            e.get("name").and_then(Json::as_str).is_some(),
            "name member"
        );
    }
    assert!(instants > 0, "expected instant events");
    // faults wc traces contain at least the shuffle spans.
    assert!(spans > 0, "expected duration spans");

    // Cross-check: the jsonl twin describes the same events.
    let runs = tracefmt::load_jsonl(std::str::from_utf8(&jsonl).unwrap()).expect("jsonl loads");
    let jsonl_events: usize = runs.iter().map(|r| r.events.len()).sum();
    let chrome_events = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) != Some("M"))
        .count();
    assert_eq!(jsonl_events, chrome_events);
}

/// The overload bench arms the full control stack, so its trace must
/// carry the overload event kinds, and every breaker/brownout event's
/// causal link must resolve backward to a storm in the same run.
#[test]
fn trace_overload_controls_emit_linked_events() {
    let (_, jsonl) = traced_run(
        env!("CARGO_BIN_EXE_overload"),
        &["--quick"],
        2,
        "overload-ev",
    );
    let runs = tracefmt::load_jsonl(std::str::from_utf8(&jsonl).unwrap()).expect("jsonl loads");
    let mut kinds = std::collections::BTreeSet::new();
    for run in &runs {
        let ids: std::collections::BTreeSet<u64> = run.events.iter().map(|e| e.id).collect();
        for e in &run.events {
            kinds.insert(e.kind.clone());
            if matches!(e.kind.as_str(), "breaker" | "brownout") {
                let cause = e.cause();
                if cause != 0 {
                    assert!(
                        ids.contains(&cause) && cause < e.id,
                        "{}: {} event {} has dangling cause {cause}",
                        run.label,
                        e.kind,
                        e.id
                    );
                }
            }
        }
    }
    for k in ["shed", "storm", "breaker", "brownout"] {
        assert!(kinds.contains(k), "expected {k} events in overload trace");
    }
}

/// Every causal link resolves to an event in the same run that happened
/// no later in virtual time, and ids are unique within a run.
///
/// Ids are stream-namespaced (`stream << 32 | seq`, stream 0 = driver,
/// stream n+1 = node n) so a driver event may legitimately link to a
/// numerically larger node-stream id; causality is ordered by virtual
/// time, not by raw id.
#[test]
fn trace_causal_links_resolve() {
    let (_, jsonl) = traced_run(env!("CARGO_BIN_EXE_service"), &["--quick"], 2, "causal");
    let runs = tracefmt::load_jsonl(std::str::from_utf8(&jsonl).unwrap()).expect("jsonl loads");
    assert!(!runs.is_empty());
    let mut linked = 0u64;
    for run in &runs {
        let at_by_id: std::collections::BTreeMap<u64, u64> =
            run.events.iter().map(|e| (e.id, e.ts)).collect();
        assert_eq!(
            at_by_id.len(),
            run.events.len(),
            "{}: duplicate ids",
            run.label
        );
        for e in &run.events {
            let cause = e.cause();
            if cause != 0 {
                linked += 1;
                let cause_at = at_by_id.get(&cause);
                assert!(
                    cause_at.is_some(),
                    "{}: event {} links to unknown cause {cause}",
                    run.label,
                    e.id
                );
                assert!(
                    *cause_at.unwrap() <= e.ts,
                    "{}: event {} links forward in time to {cause}",
                    run.label,
                    e.id
                );
            }
        }
    }
    assert!(linked > 0, "expected causal links in service trace");
}
