//! Scale-mode determinism: `--scale` output is byte-identical at any
//! host parallelism.
//!
//! The million-tenant admission plane adds two new parallel paths on
//! top of the PR 7 shard executor: per-shard admission decisions fan
//! out across `run_parts`, and per-shard quantile sketches merge in
//! shard order. Neither may be observable — `service --scale --quick`
//! must emit the same bytes under `--jobs 1` vs `--jobs 4` (sweep-level
//! parallelism) and `--shards 1` vs `--shards 4` (node-round and
//! admission-fan-out parallelism).

use std::process::Command;

/// Runs `service --scale --quick` with the given flag pair and returns
/// stdout.
fn run_scale(flag: &str, value: usize, tag: &str) -> Vec<u8> {
    let scratch = std::env::temp_dir().join(format!(
        "itask-scale-det-{}-{tag}-{value}",
        std::process::id()
    ));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    let out = Command::new(env!("CARGO_BIN_EXE_service"))
        .args(["--scale", "--quick", flag, &value.to_string()])
        .env("ITASK_BENCH_RESULTS", &scratch)
        .output()
        .expect("spawn service --scale");
    assert!(
        out.status.success(),
        "service --scale --quick {flag} {value} exited with {}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn scale_stdout_is_jobs_invariant() {
    let j1 = run_scale("--jobs", 1, "jobs");
    let j4 = run_scale("--jobs", 4, "jobs");
    assert!(
        j1 == j4,
        "service --scale stdout differs between --jobs 1 and --jobs 4"
    );
}

#[test]
fn scale_stdout_is_shards_invariant() {
    let s1 = run_scale("--shards", 1, "shards");
    let s4 = run_scale("--shards", 4, "shards");
    assert!(
        s1 == s4,
        "service --scale stdout differs between --shards 1 and --shards 4"
    );
}
