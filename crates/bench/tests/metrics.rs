//! Metrics-plane determinism and cross-check tests (§ Observability).
//!
//! The `--metrics` dump rides the tracer's merged event stream, so it
//! is part of the deterministic surface: JSONL and OpenMetrics bytes
//! must be identical whatever `--jobs` or `--shards` is, and the GC
//! pause accounting must agree exactly with the profiler's GC vtime
//! and the tracer's GC span durations — three instruments, one number.

use std::path::PathBuf;
use std::process::Command;

use itask_bench::metricsfmt;
use itask_bench::tracefmt::{self, Json};

/// One metered run's artifacts.
struct Artifacts {
    jsonl: Vec<u8>,
    om: Vec<u8>,
    trace_jsonl: Vec<u8>,
    sweeps: String,
}

/// Runs `bin args --metrics <scratch>/metrics.jsonl` (plus `--jobs`,
/// `--shards`, `--trace`, `--profile` as requested) and collects every
/// artifact it wrote.
fn metered_run(
    bin: &str,
    args: &[&str],
    jobs: usize,
    shards: usize,
    trace: bool,
    profile: bool,
    tag: &str,
) -> Artifacts {
    let scratch = std::env::temp_dir().join(format!(
        "itask-metrics-{}-{tag}-j{jobs}-s{shards}",
        std::process::id()
    ));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    let metrics: PathBuf = scratch.join("metrics.jsonl");
    let trace_path: PathBuf = scratch.join("trace.json");
    let mut cmd = Command::new(bin);
    cmd.args(args)
        .arg("--jobs")
        .arg(jobs.to_string())
        .arg("--shards")
        .arg(shards.to_string())
        .arg("--metrics")
        .arg(&metrics)
        .env("ITASK_BENCH_RESULTS", &scratch);
    if trace {
        cmd.arg("--trace").arg(&trace_path);
    }
    if profile {
        cmd.arg("--profile");
    }
    let out = cmd
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} --jobs {jobs} --shards {shards} exited with {}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    Artifacts {
        jsonl: std::fs::read(&metrics).expect("metrics jsonl written"),
        om: std::fs::read(format!("{}.om", metrics.display())).expect("openmetrics twin written"),
        trace_jsonl: if trace {
            std::fs::read(format!("{}.jsonl", trace_path.display())).expect("trace jsonl written")
        } else {
            Vec::new()
        },
        sweeps: std::fs::read_to_string(scratch.join("BENCH_sweeps.json")).unwrap_or_default(),
    }
}

/// The dump must be byte-identical at `--jobs 1` vs `--jobs 4` and at
/// `--shards 1` vs `--shards 4`.
fn assert_metrics_invariant(bin: &str, args: &[&str], tag: &str) {
    let base = metered_run(bin, args, 1, 1, false, false, tag);
    assert!(!base.jsonl.is_empty(), "{tag}: metrics dump is empty");
    let jobs4 = metered_run(bin, args, 4, 1, false, false, tag);
    assert!(
        base.jsonl == jobs4.jsonl,
        "{tag}: metrics jsonl differs between --jobs 1 and --jobs 4"
    );
    assert!(
        base.om == jobs4.om,
        "{tag}: openmetrics snapshot differs between --jobs 1 and --jobs 4"
    );
    let shards4 = metered_run(bin, args, 1, 4, false, false, tag);
    assert!(
        base.jsonl == shards4.jsonl,
        "{tag}: metrics jsonl differs between --shards 1 and --shards 4"
    );
    assert!(
        base.om == shards4.om,
        "{tag}: openmetrics snapshot differs between --shards 1 and --shards 4"
    );
}

#[test]
fn metrics_invariant_faults_wc() {
    assert_metrics_invariant(env!("CARGO_BIN_EXE_faults"), &["--wc-only"], "faults");
}

#[test]
fn metrics_invariant_service_quick() {
    assert_metrics_invariant(env!("CARGO_BIN_EXE_service"), &["--quick"], "service");
}

#[test]
fn metrics_invariant_smr_quick() {
    assert_metrics_invariant(env!("CARGO_BIN_EXE_smr"), &["--quick"], "smr");
}

#[test]
fn metrics_invariant_table5_quick_wc() {
    // Minutes in debug; the CI golden job runs tests with --release.
    if cfg!(debug_assertions) {
        eprintln!("skipping table5 metrics determinism in debug mode");
        return;
    }
    assert_metrics_invariant(env!("CARGO_BIN_EXE_table5"), &["--quick", "wc"], "table5");
}

/// The dump parses, covers the layers the binary exercises, and its
/// OpenMetrics twin ends with the spec's `# EOF` terminator.
#[test]
fn metrics_dump_schema_and_coverage() {
    let a = metered_run(
        env!("CARGO_BIN_EXE_service"),
        &["--quick"],
        2,
        1,
        false,
        false,
        "schema",
    );
    let runs = metricsfmt::load_jsonl(std::str::from_utf8(&a.jsonl).unwrap())
        .expect("metrics jsonl loads");
    assert!(!runs.is_empty());
    let mut names = std::collections::BTreeSet::new();
    for run in &runs {
        assert!(run.cadence_ns > 0);
        for p in &run.points {
            assert_eq!(p.ts % run.cadence_ns, 0, "point off the cadence grid");
            names.insert(p.metric.clone());
        }
        for h in &run.hists {
            names.insert(h.metric.clone());
        }
    }
    // The service bench exercises memory, IRS, scheduler, admission and
    // completion accounting in one sweep.
    for want in [
        "mem.live_bytes",
        "mem.gc_count",
        "sched.runnable",
        "serve.queue_depth",
        "serve.admitted",
        "serve.completed",
        "serve.latency_ns",
    ] {
        assert!(names.contains(want), "missing {want} in {names:?}");
    }
    let om = std::str::from_utf8(&a.om).unwrap();
    assert!(om.contains("# TYPE serve_admitted counter"), "om families");
    assert!(om.ends_with("# EOF\n"), "om terminator");
}

/// Three instruments, one number: the summed `mem.gc_pause_ns` finals,
/// the profiler's GC vtime, and the summed durations of traced GC
/// spans must agree exactly on the same metered sweep.
#[test]
fn gc_pause_metric_matches_profiler_and_trace() {
    let a = metered_run(
        env!("CARGO_BIN_EXE_faults"),
        &["--wc-only"],
        2,
        1,
        true,
        true,
        "crosscheck",
    );

    // Tracer: sum of GC span durations across all runs.
    let trace_runs = tracefmt::load_jsonl(std::str::from_utf8(&a.trace_jsonl).unwrap())
        .expect("trace jsonl loads");
    let trace_gc_ns: u64 = trace_runs
        .iter()
        .flat_map(|r| &r.events)
        .filter(|e| e.kind == "gc")
        .map(|e| e.dur)
        .sum();

    // Metrics: final cumulative gc_pause_ns per (run, node), summed.
    let metric_runs = metricsfmt::load_jsonl(std::str::from_utf8(&a.jsonl).unwrap())
        .expect("metrics jsonl loads");
    let metric_gc_ns: u64 = metric_runs
        .iter()
        .map(|r| {
            let mut finals = std::collections::BTreeMap::new();
            for p in &r.points {
                if p.metric == "mem.gc_pause_ns" {
                    finals.insert(p.node, p.value as u64);
                }
            }
            finals.values().sum::<u64>()
        })
        .sum();

    // Profiler: the gc stage's vtime in the sweeps sidecar.
    let sweeps = tracefmt::parse(&a.sweeps).expect("sweeps json parses");
    let prof_gc_ns = sweeps
        .get("binaries")
        .and_then(|b| b.get("faults"))
        .and_then(|f| f.get("profile"))
        .and_then(|p| p.get("gc"))
        .and_then(|g| g.get("vtime_ns"))
        .and_then(Json::as_u64)
        .expect("profile gc vtime in sweeps sidecar");

    assert!(trace_gc_ns > 0, "expected GC activity in the faults sweep");
    assert_eq!(
        metric_gc_ns, trace_gc_ns,
        "metrics gc_pause_ns vs traced GC span sum"
    );
    assert_eq!(
        prof_gc_ns, trace_gc_ns,
        "profiler gc vtime vs traced GC span sum"
    );
}

/// `--trace`, `--profile` and `--metrics` compose in one invocation:
/// every sink is written and the metrics bytes match a metrics-only
/// run (arming the tracer must not perturb the metrics fold).
#[test]
fn metrics_compose_with_trace_and_profile() {
    let solo = metered_run(
        env!("CARGO_BIN_EXE_service"),
        &["--quick"],
        2,
        1,
        false,
        false,
        "solo",
    );
    let all = metered_run(
        env!("CARGO_BIN_EXE_service"),
        &["--quick"],
        2,
        1,
        true,
        true,
        "composed",
    );
    assert!(
        !all.trace_jsonl.is_empty(),
        "trace written alongside metrics"
    );
    assert!(
        all.sweeps.contains("\"profile\""),
        "profile in sweeps sidecar"
    );
    assert!(
        solo.jsonl == all.jsonl,
        "metrics jsonl changed when the tracer/profiler were armed too"
    );
    assert!(solo.om == all.om, "openmetrics changed when co-armed");
    // The trace must carry no metric lines (they are split out into the
    // metrics fold, not dumped as trace events).
    let runs = tracefmt::load_jsonl(std::str::from_utf8(&all.trace_jsonl).unwrap())
        .expect("trace jsonl loads");
    for run in &runs {
        assert!(
            run.events.iter().all(|e| e.kind != "metric"),
            "{}: metric events leaked into the trace dump",
            run.label
        );
    }
}
