#![warn(missing_docs)]

//! A Hyracks-like push-based dataflow engine on the cluster simulator.
//!
//! Hyracks jobs are operator DAGs connected by hash connectors; the five
//! evaluation programs (WC, HS, II, HJ, GR) all compile to the same
//! two-phase shape — a partition-local operator, an all-to-all hash
//! shuffle, and a bucket-exclusive aggregation operator — which is what
//! [`engine`] executes:
//!
//! * [`engine::run_regular`] — the baseline: a fixed pool of worker
//!   threads per node (the paper's 1–8 thread sweep), frames of a
//!   configurable granularity (8–128KB), operator state held in memory
//!   for the whole phase. An OME anywhere kills the job, exactly like
//!   stock Hyracks.
//! * [`engine::run_itask`] — the same logical job built from ITasks: map
//!   instances push partial frames to the shuffle when interrupted,
//!   reduce instances tag partial aggregates for an MITask merge
//!   (Figures 6–7 of the paper), and the IRS adapts the number of
//!   instances to memory availability.

pub mod engine;
pub mod operator;
pub mod pool;

pub use engine::{
    chunk_into_frames, chunk_into_frames_pooled, distribute_blocks, run_itask, run_regular,
    ItaskFactories, ItaskJobSpec, JobSpec, ShuffleBatch,
};
pub use operator::{BucketArena, OpCx, Operator, OperatorWorker, OutputSink};
pub use pool::BatchPool;
