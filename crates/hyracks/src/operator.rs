//! The regular (non-interruptible) operator model: Hyracks'
//! `nextFrame`-style push operators, executed by a fixed thread pool.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use itask_core::Tuple;
use simcluster::{StepOutcome, Work, WorkCx};
use simcore::{prof, ByteSize, CostModel, SimDuration, SimResult, SimTime, SpaceId};

/// Context handed to operator callbacks: cost charging, the operator's
/// state space on the simulated heap, and streaming emission toward the
/// downstream connector.
pub struct OpCx<'a, 'b, Out> {
    work: &'a mut WorkCx<'b>,
    state_space: SpaceId,
    sink: &'a mut BucketArena<Out>,
}

impl<'a, 'b, Out> OpCx<'a, 'b, Out> {
    /// Pushes one tuple to the connector (Hyracks hands full frames to
    /// the next operator, so emitted data does not stay on this
    /// operator's heap). The tuple lands directly in the node sink's
    /// per-bucket arena; batch bookkeeping happens when the worker's
    /// quantum ends ([`BucketArena::seal_batches`]).
    pub fn emit(&mut self, bucket: u32, tuple: Out) {
        self.sink.push_grow(bucket, tuple);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.work.now()
    }

    /// The cost model.
    pub fn cost(&self) -> CostModel {
        self.work.cost()
    }

    /// Consumes CPU time.
    pub fn charge(&mut self, t: SimDuration) {
        self.work.charge(t);
    }

    /// Allocates into the operator's state space (hash tables, sort
    /// buffers, postings lists — the structures that blow up under
    /// skew). Fails with the simulation's OME when the heap is full.
    pub fn alloc_state(&mut self, bytes: ByteSize) -> SimResult<()> {
        let s = self.state_space;
        self.work.alloc(s, bytes)
    }

    /// Frees bytes from the state space (they become garbage).
    pub fn free_state(&mut self, bytes: ByteSize) -> ByteSize {
        let s = self.state_space;
        self.work.free(s, bytes)
    }

    /// Live bytes in the state space.
    pub fn state_bytes(&mut self) -> ByteSize {
        let s = self.state_space;
        self.work.node().heap.space_live(s)
    }
}

/// A regular dataflow operator: one instance per worker thread, state
/// kept for the whole phase, streaming emission via [`OpCx::emit`].
/// `Send` because workers ride node simulators across shard threads.
pub trait Operator: Send {
    /// Input tuple type.
    type In: Tuple;
    /// Output tuple type (keyed by shuffle bucket).
    type Out: Tuple;

    /// Called once before the first tuple.
    fn open(&mut self, cx: &mut OpCx<'_, '_, Self::Out>) -> SimResult<()>;

    /// Processes one tuple (Hyracks pushes frames; the worker iterates
    /// the frame's tuples through this).
    fn next(&mut self, cx: &mut OpCx<'_, '_, Self::Out>, tuple: &Self::In) -> SimResult<()>;

    /// Called once after the last tuple (flush aggregates).
    fn close(&mut self, cx: &mut OpCx<'_, '_, Self::Out>) -> SimResult<()>;
}

/// A connector's staged output: flush-ordered batches stored as dense
/// per-bucket arenas. Tuples for bucket `b` live contiguously in one
/// vector (in emission order) instead of one small allocation per
/// flushed batch, and `batches` records each `(bucket, len)` group in
/// the order it was handed over — so the shuffle can still charge the
/// fabric per batch (identical wire-time sequence to per-batch vectors)
/// while moving whole buckets to their destinations in bulk.
pub struct BucketArena<T> {
    /// Tuples per bucket, indexed by bucket id (empty slot = nothing
    /// emitted there). Within a bucket, concatenated flush order.
    arenas: Vec<Vec<T>>,
    /// `(bucket, len)` of every flushed batch, in flush order.
    batches: Vec<(u32, u32)>,
    /// Per-bucket tuple count already covered by `batches` — the seal
    /// high-water mark [`Self::seal_batches`] diffs against.
    sealed: Vec<u32>,
}

impl<T> Default for BucketArena<T> {
    fn default() -> Self {
        BucketArena {
            arenas: Vec::new(),
            batches: Vec::new(),
            sealed: Vec::new(),
        }
    }
}

impl<T> BucketArena<T> {
    /// True when nothing has been flushed into the arena.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Total tuples held across all buckets.
    pub fn total_len(&self) -> u64 {
        self.arenas.iter().map(|a| a.len() as u64).sum()
    }

    /// Appends one tuple to `bucket`'s arena, growing the bucket table
    /// on first touch. The tuple stays unsealed (not yet part of any
    /// batch) until the next [`Self::seal_batches`].
    pub fn push_grow(&mut self, bucket: u32, t: T) {
        let bi = bucket as usize;
        if self.arenas.len() <= bi {
            self.arenas.resize_with(bi + 1, Vec::new);
        }
        self.arenas[bi].push(t);
    }

    /// Seals everything pushed since the previous seal into one batch
    /// per touched bucket (ascending bucket order) and returns the
    /// newly sealed tuple count. The mark is global to the arena, so
    /// worker threads sharing one node sink — each sealing at its own
    /// quantum end, pushes never interleaving within a quantum — get
    /// exactly one batch per (quantum, bucket), the grouping the old
    /// buffer-then-flush path produced.
    pub fn seal_batches(&mut self) -> u64 {
        if self.sealed.len() < self.arenas.len() {
            self.sealed.resize(self.arenas.len(), 0);
        }
        let mut total = 0u64;
        for (bi, a) in self.arenas.iter().enumerate() {
            let len = a.len() as u32;
            let prev = self.sealed[bi];
            if len > prev {
                self.batches.push((bi as u32, len - prev));
                self.sealed[bi] = len;
                total += (len - prev) as u64;
            }
        }
        total
    }

    /// Absorbs an already-batched `(bucket, tuples)` group wholesale
    /// (ITask map finals arrive pre-bucketed as [`crate::ShuffleBatch`]).
    /// Empty batches are recorded too — the shuffle charges the fabric
    /// per batch, so dropping one would change wire times. Not meant to
    /// be mixed with the [`Self::push_grow`]/[`Self::seal_batches`]
    /// protocol on one arena.
    pub fn push_batch(&mut self, bucket: u32, tuples: Vec<T>) {
        let bi = bucket as usize;
        if self.arenas.len() <= bi {
            self.arenas.resize_with(bi + 1, Vec::new);
        }
        self.batches.push((bucket, tuples.len() as u32));
        if self.arenas[bi].is_empty() {
            // First batch for the bucket: adopt the allocation.
            self.arenas[bi] = tuples;
        } else {
            self.arenas[bi].extend(tuples);
        }
    }

    /// Decomposes into `(arenas, batches)` for the shuffle.
    pub fn into_parts(self) -> (Vec<Vec<T>>, Vec<(u32, u32)>) {
        (self.arenas, self.batches)
    }

    /// Takes every non-empty bucket as `(bucket, tuples)` in ascending
    /// bucket order, leaving the arena empty. Per-bucket concatenation
    /// in flush order is exactly what a stable sort of the old
    /// batch-list representation produced, so collection code sees the
    /// same tuple sequence.
    pub fn drain_groups(&mut self) -> Vec<(u32, Vec<T>)> {
        self.batches.clear();
        self.sealed.clear();
        self.arenas
            .iter_mut()
            .enumerate()
            .filter(|(_, a)| !a.is_empty())
            .map(|(b, a)| (b as u32, std::mem::take(a)))
            .collect()
    }

    /// Reconstructs the flush-ordered `(bucket, tuples)` batch list —
    /// for consumers (the multi-tenant service's shuffle) that still
    /// charge and route per batch from owned vectors.
    pub fn into_batches(self) -> Vec<(u32, Vec<T>)> {
        let BucketArena {
            arenas, batches, ..
        } = self;
        let mut its: Vec<std::vec::IntoIter<T>> = arenas.into_iter().map(Vec::into_iter).collect();
        batches
            .into_iter()
            .map(|(b, len)| {
                let tuples = its[b as usize].by_ref().take(len as usize).collect();
                (b, tuples)
            })
            .collect()
    }
}

/// Where a worker's outputs are collected (per node, shared by its
/// threads). Workers and the driver touch it at disjoint times — worker
/// quanta during rounds, shuffle drains at barriers — so the mutex is
/// never contended; `Arc<Mutex>` exists to make workers `Send`able for
/// the shard executor.
pub type OutputSink<T> = Arc<Mutex<BucketArena<T>>>;

/// A fixed-pool worker executing one [`Operator`] instance over a queue
/// of frames.
pub struct OperatorWorker<O: Operator> {
    op: O,
    frames: VecDeque<Vec<O::In>>,
    sink: OutputSink<O::Out>,
    state_space: Option<SpaceId>,
    frame_space: Option<SpaceId>,
    cursor: usize,
    opened: bool,
    /// Whether loading a frame charges a disk read + decode (map phase
    /// reading HDFS blocks) or just decode (reduce phase consuming
    /// staged shuffle output).
    charge_read: bool,
    label: String,
}

impl<O: Operator> OperatorWorker<O> {
    /// Creates a worker over `frames`.
    pub fn new(
        op: O,
        frames: VecDeque<Vec<O::In>>,
        sink: OutputSink<O::Out>,
        charge_read: bool,
        label: impl Into<String>,
    ) -> Self {
        OperatorWorker {
            op,
            frames,
            sink,
            state_space: None,
            frame_space: None,
            cursor: 0,
            opened: false,
            charge_read,
            label: label.into(),
        }
    }

    fn frame_bytes(frame: &[O::In]) -> (ByteSize, ByteSize) {
        let mem: u64 = frame.iter().map(Tuple::heap_bytes).sum();
        let ser: u64 = frame.iter().map(Tuple::ser_bytes).sum();
        (ByteSize(mem), ByteSize(ser))
    }

    fn run(&mut self, cx: &mut WorkCx<'_>) -> SimResult<bool> {
        let state_space = match self.state_space {
            Some(s) => s,
            None => {
                let s = cx.create_space(format!("{}.state", self.label));
                self.state_space = Some(s);
                s
            }
        };
        // One sink borrow per quantum: emissions land directly in the
        // shared arena and are sealed into batches before returning
        // (single-threaded simulation — nothing else reads it mid-run).
        let sink_rc = self.sink.clone();
        let mut sink = sink_rc.lock().unwrap();
        if !self.opened {
            let mut ocx = OpCx {
                work: cx,
                state_space,
                sink: &mut sink,
            };
            self.op.open(&mut ocx)?;
            self.opened = true;
        }
        while !cx.out_of_quantum() {
            // Ensure a loaded frame.
            let Some(frame) = self.frames.front() else {
                break;
            };
            if self.frame_space.is_none() {
                let (mem, ser) = Self::frame_bytes(frame);
                let space = cx.create_space(format!("{}.frame", self.label));
                if self.charge_read {
                    cx.charge(cx.cost().disk_read(ser));
                }
                cx.charge(cx.cost().deserialize_cpu(ser));
                if let Err(e) = cx.alloc(space, mem) {
                    cx.node().heap.release_space(space);
                    return Err(e);
                }
                self.frame_space = Some(space);
                self.cursor = 0;
            }
            // Process tuples. The frame is borrowed once for the whole
            // inner loop (disjoint field borrows: `frames` immutably,
            // `op` mutably) — a `front()` lookup per tuple dominated
            // this loop in profiles.
            let frame_len;
            {
                let OperatorWorker {
                    op, frames, cursor, ..
                } = &mut *self;
                let frame = frames.front().expect("frame present");
                frame_len = frame.len();
                let cost_model = cx.cost();
                let _map_wall = prof::wall_timer(prof::Stage::Map);
                let cursor_before = *cursor;
                let mut map_vtime = SimDuration::ZERO;
                let mut ocx = OpCx {
                    work: cx,
                    state_space,
                    sink: &mut sink,
                };
                while *cursor < frame_len && !ocx.work.out_of_quantum() {
                    let t = &frame[*cursor];
                    let tuple_cost = cost_model.tuple_cost(ByteSize(t.ser_bytes()));
                    ocx.work.charge(tuple_cost);
                    map_vtime += tuple_cost;
                    op.next(&mut ocx, t)?;
                    *cursor += 1;
                }
                prof::count(prof::Stage::Map, 1, (*cursor - cursor_before) as u64);
                prof::vtime(prof::Stage::Map, map_vtime);
            }
            if self.cursor >= frame_len {
                // Frame done: its heap bytes become garbage.
                if let Some(space) = self.frame_space.take() {
                    cx.node().heap.release_space(space);
                }
                self.frames.pop_front();
            }
        }
        if self.frames.is_empty() {
            let mut ocx = OpCx {
                work: cx,
                state_space,
                sink: &mut sink,
            };
            self.op.close(&mut ocx)?;
            Self::seal_sink(&mut sink);
            if let Some(s) = self.state_space.take() {
                cx.node().heap.release_space(s);
            }
            return Ok(true);
        }
        Self::seal_sink(&mut sink);
        Ok(false)
    }

    /// Ends the quantum's emission window: everything this worker
    /// pushed since the previous seal becomes one batch per touched
    /// bucket (ascending) — the same grouping the old buffer-then-flush
    /// path produced, without staging tuples in an intermediate vector.
    fn seal_sink(sink: &mut BucketArena<O::Out>) {
        let _wall = prof::wall_timer(prof::Stage::EmitFlush);
        let sealed = sink.seal_batches();
        if sealed > 0 {
            prof::count(prof::Stage::EmitFlush, 1, sealed);
        }
    }
}

impl<O: Operator> Work for OperatorWorker<O> {
    fn step(&mut self, cx: &mut WorkCx<'_>) -> StepOutcome {
        match self.run(cx) {
            Ok(true) => StepOutcome::Finished,
            Ok(false) => StepOutcome::Ran,
            Err(e) => StepOutcome::Failed(e),
        }
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcluster::{NodeSim, NodeState};
    use simcore::NodeId;

    struct W(u64);

    impl Tuple for W {
        fn heap_bytes(&self) -> u64 {
            self.0
        }
    }

    /// Counts tuples and bytes; allocates 64B of state per tuple.
    struct Count {
        n: u64,
    }

    impl Operator for Count {
        type In = W;
        type Out = W;

        fn open(&mut self, _cx: &mut OpCx<'_, '_, W>) -> SimResult<()> {
            Ok(())
        }

        fn next(&mut self, cx: &mut OpCx<'_, '_, W>, _t: &W) -> SimResult<()> {
            cx.alloc_state(ByteSize(64))?;
            self.n += 1;
            Ok(())
        }

        fn close(&mut self, cx: &mut OpCx<'_, '_, W>) -> SimResult<()> {
            cx.emit(0, W(self.n));
            Ok(())
        }
    }

    fn sim(heap_kib: u64) -> NodeSim {
        NodeSim::new(NodeState::new(
            NodeId(0),
            8,
            ByteSize::kib(heap_kib),
            ByteSize::mib(64),
        ))
    }

    #[test]
    fn worker_processes_all_frames_and_emits() {
        let mut s = sim(4096);
        let sink: OutputSink<W> = OutputSink::default();
        let frames: VecDeque<Vec<W>> = (0..4).map(|_| (0..100).map(|_| W(50)).collect()).collect();
        s.spawn(Box::new(OperatorWorker::new(
            Count { n: 0 },
            frames,
            sink.clone(),
            true,
            "count",
        )));
        for _ in 0..100_000 {
            if s.live_count() == 0 {
                break;
            }
            let r = s.run_round();
            assert!(r.failed.is_empty(), "{:?}", r.failed);
        }
        let groups = sink.lock().unwrap().drain_groups();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].1[0].0, 400);
        // Everything was released at close.
        assert_eq!(s.node().heap.live(), ByteSize::ZERO);
    }

    #[test]
    fn state_explosion_fails_with_oom() {
        let mut s = sim(64); // 64KiB heap, state wants 640KiB
        let sink: OutputSink<W> = OutputSink::default();
        let frames: VecDeque<Vec<W>> = (0..10)
            .map(|_| (0..1000).map(|_| W(10)).collect())
            .collect();
        s.spawn(Box::new(OperatorWorker::new(
            Count { n: 0 },
            frames,
            sink.clone(),
            false,
            "count",
        )));
        let mut failed = None;
        for _ in 0..100_000 {
            if s.live_count() == 0 {
                break;
            }
            let r = s.run_round();
            if let Some((_, e)) = r.failed.into_iter().next() {
                failed = Some(e);
                break;
            }
        }
        assert!(failed.expect("must fail").is_oom());
        assert!(sink.lock().unwrap().is_empty());
    }
}
