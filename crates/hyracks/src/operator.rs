//! The regular (non-interruptible) operator model: Hyracks'
//! `nextFrame`-style push operators, executed by a fixed thread pool.

use std::collections::VecDeque;
use std::rc::Rc;

use itask_core::Tuple;
use simcluster::{StepOutcome, Work, WorkCx};
use simcore::{ByteSize, CostModel, SimDuration, SimResult, SimTime, SpaceId};

/// Context handed to operator callbacks: cost charging, the operator's
/// state space on the simulated heap, and streaming emission toward the
/// downstream connector.
pub struct OpCx<'a, 'b, Out> {
    work: &'a mut WorkCx<'b>,
    state_space: SpaceId,
    emitted: &'a mut Vec<(u32, Out)>,
}

impl<'a, 'b, Out> OpCx<'a, 'b, Out> {
    /// Pushes one tuple to the connector (Hyracks hands full frames to
    /// the next operator, so emitted data does not stay on this
    /// operator's heap).
    pub fn emit(&mut self, bucket: u32, tuple: Out) {
        self.emitted.push((bucket, tuple));
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.work.now()
    }

    /// The cost model.
    pub fn cost(&self) -> CostModel {
        self.work.cost()
    }

    /// Consumes CPU time.
    pub fn charge(&mut self, t: SimDuration) {
        self.work.charge(t);
    }

    /// Allocates into the operator's state space (hash tables, sort
    /// buffers, postings lists — the structures that blow up under
    /// skew). Fails with the simulation's OME when the heap is full.
    pub fn alloc_state(&mut self, bytes: ByteSize) -> SimResult<()> {
        let s = self.state_space;
        self.work.alloc(s, bytes)
    }

    /// Frees bytes from the state space (they become garbage).
    pub fn free_state(&mut self, bytes: ByteSize) -> ByteSize {
        let s = self.state_space;
        self.work.free(s, bytes)
    }

    /// Live bytes in the state space.
    pub fn state_bytes(&mut self) -> ByteSize {
        let s = self.state_space;
        self.work.node().heap.space_live(s)
    }
}

/// A regular dataflow operator: one instance per worker thread, state
/// kept for the whole phase, streaming emission via [`OpCx::emit`].
pub trait Operator {
    /// Input tuple type.
    type In: Tuple;
    /// Output tuple type (keyed by shuffle bucket).
    type Out: Tuple;

    /// Called once before the first tuple.
    fn open(&mut self, cx: &mut OpCx<'_, '_, Self::Out>) -> SimResult<()>;

    /// Processes one tuple (Hyracks pushes frames; the worker iterates
    /// the frame's tuples through this).
    fn next(&mut self, cx: &mut OpCx<'_, '_, Self::Out>, tuple: &Self::In) -> SimResult<()>;

    /// Called once after the last tuple (flush aggregates).
    fn close(&mut self, cx: &mut OpCx<'_, '_, Self::Out>) -> SimResult<()>;
}

/// Where a worker's outputs are collected (per node, shared by its
/// threads; single-threaded simulation makes `Rc<RefCell>` sound).
pub type OutputSink<T> = Rc<std::cell::RefCell<Vec<(u32, Vec<T>)>>>;

/// A fixed-pool worker executing one [`Operator`] instance over a queue
/// of frames.
pub struct OperatorWorker<O: Operator> {
    op: O,
    frames: VecDeque<Vec<O::In>>,
    sink: OutputSink<O::Out>,
    emitted: Vec<(u32, O::Out)>,
    state_space: Option<SpaceId>,
    frame_space: Option<SpaceId>,
    cursor: usize,
    opened: bool,
    /// Whether loading a frame charges a disk read + decode (map phase
    /// reading HDFS blocks) or just decode (reduce phase consuming
    /// staged shuffle output).
    charge_read: bool,
    label: String,
}

impl<O: Operator> OperatorWorker<O> {
    /// Creates a worker over `frames`.
    pub fn new(
        op: O,
        frames: VecDeque<Vec<O::In>>,
        sink: OutputSink<O::Out>,
        charge_read: bool,
        label: impl Into<String>,
    ) -> Self {
        OperatorWorker {
            op,
            frames,
            sink,
            emitted: Vec::new(),
            state_space: None,
            frame_space: None,
            cursor: 0,
            opened: false,
            charge_read,
            label: label.into(),
        }
    }

    fn frame_bytes(frame: &[O::In]) -> (ByteSize, ByteSize) {
        let mem: u64 = frame.iter().map(Tuple::heap_bytes).sum();
        let ser: u64 = frame.iter().map(Tuple::ser_bytes).sum();
        (ByteSize(mem), ByteSize(ser))
    }

    fn run(&mut self, cx: &mut WorkCx<'_>) -> SimResult<bool> {
        let state_space = match self.state_space {
            Some(s) => s,
            None => {
                let s = cx.create_space(format!("{}.state", self.label));
                self.state_space = Some(s);
                s
            }
        };
        if !self.opened {
            let mut ocx = OpCx {
                work: cx,
                state_space,
                emitted: &mut self.emitted,
            };
            self.op.open(&mut ocx)?;
            self.opened = true;
        }
        while !cx.out_of_quantum() {
            // Ensure a loaded frame.
            let Some(frame) = self.frames.front() else {
                break;
            };
            if self.frame_space.is_none() {
                let (mem, ser) = Self::frame_bytes(frame);
                let space = cx.create_space(format!("{}.frame", self.label));
                if self.charge_read {
                    cx.charge(cx.cost().disk_read(ser));
                }
                cx.charge(cx.cost().deserialize_cpu(ser));
                if let Err(e) = cx.alloc(space, mem) {
                    cx.node().heap.release_space(space);
                    return Err(e);
                }
                self.frame_space = Some(space);
                self.cursor = 0;
            }
            // Process tuples. The frame is borrowed once for the whole
            // inner loop (disjoint field borrows: `frames` immutably,
            // `op` and `emitted` mutably) — a `front()` lookup per
            // tuple dominated this loop in profiles.
            let frame_len;
            {
                let OperatorWorker {
                    op,
                    frames,
                    emitted,
                    cursor,
                    ..
                } = &mut *self;
                let frame = frames.front().expect("frame present");
                frame_len = frame.len();
                let cost_model = cx.cost();
                while *cursor < frame_len && !cx.out_of_quantum() {
                    let t = &frame[*cursor];
                    cx.charge(cost_model.tuple_cost(ByteSize(t.ser_bytes())));
                    let mut ocx = OpCx {
                        work: cx,
                        state_space,
                        emitted: &mut *emitted,
                    };
                    op.next(&mut ocx, t)?;
                    *cursor += 1;
                }
            }
            if self.cursor >= frame_len {
                // Frame done: its heap bytes become garbage.
                if let Some(space) = self.frame_space.take() {
                    cx.node().heap.release_space(space);
                }
                self.frames.pop_front();
            }
        }
        if self.frames.is_empty() {
            let mut ocx = OpCx {
                work: cx,
                state_space,
                emitted: &mut self.emitted,
            };
            self.op.close(&mut ocx)?;
            self.flush_emitted();
            if let Some(s) = self.state_space.take() {
                cx.node().heap.release_space(s);
            }
            return Ok(true);
        }
        self.flush_emitted();
        Ok(false)
    }

    /// Hands emitted tuples to the connector sink, grouped by bucket
    /// (ascending, per-bucket insertion order — the stable sort keeps
    /// the grouping identical to a BTreeMap pass without rebuilding one
    /// every scheduler quantum).
    fn flush_emitted(&mut self) {
        if self.emitted.is_empty() {
            return;
        }
        self.emitted.sort_by_key(|(b, _)| *b);
        let mut groups: Vec<(u32, usize)> = Vec::new();
        for &(b, _) in &self.emitted {
            match groups.last_mut() {
                Some((gb, n)) if *gb == b => *n += 1,
                _ => groups.push((b, 1)),
            }
        }
        let mut sink = self.sink.borrow_mut();
        sink.reserve(groups.len());
        // `drain` keeps `emitted`'s capacity for the next quantum.
        let mut it = self.emitted.drain(..);
        for (bucket, n) in groups {
            let mut v = Vec::with_capacity(n);
            v.extend(it.by_ref().take(n).map(|(_, t)| t));
            sink.push((bucket, v));
        }
    }
}

impl<O: Operator> Work for OperatorWorker<O> {
    fn step(&mut self, cx: &mut WorkCx<'_>) -> StepOutcome {
        match self.run(cx) {
            Ok(true) => StepOutcome::Finished,
            Ok(false) => StepOutcome::Ran,
            Err(e) => StepOutcome::Failed(e),
        }
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcluster::{NodeSim, NodeState};
    use simcore::NodeId;

    struct W(u64);

    impl Tuple for W {
        fn heap_bytes(&self) -> u64 {
            self.0
        }
    }

    /// Counts tuples and bytes; allocates 64B of state per tuple.
    struct Count {
        n: u64,
    }

    impl Operator for Count {
        type In = W;
        type Out = W;

        fn open(&mut self, _cx: &mut OpCx<'_, '_, W>) -> SimResult<()> {
            Ok(())
        }

        fn next(&mut self, cx: &mut OpCx<'_, '_, W>, _t: &W) -> SimResult<()> {
            cx.alloc_state(ByteSize(64))?;
            self.n += 1;
            Ok(())
        }

        fn close(&mut self, cx: &mut OpCx<'_, '_, W>) -> SimResult<()> {
            cx.emit(0, W(self.n));
            Ok(())
        }
    }

    fn sim(heap_kib: u64) -> NodeSim {
        NodeSim::new(NodeState::new(
            NodeId(0),
            8,
            ByteSize::kib(heap_kib),
            ByteSize::mib(64),
        ))
    }

    #[test]
    fn worker_processes_all_frames_and_emits() {
        let mut s = sim(4096);
        let sink: OutputSink<W> = Rc::default();
        let frames: VecDeque<Vec<W>> = (0..4).map(|_| (0..100).map(|_| W(50)).collect()).collect();
        s.spawn(Box::new(OperatorWorker::new(
            Count { n: 0 },
            frames,
            sink.clone(),
            true,
            "count",
        )));
        for _ in 0..100_000 {
            if s.live_count() == 0 {
                break;
            }
            let r = s.run_round();
            assert!(r.failed.is_empty(), "{:?}", r.failed);
        }
        let out = sink.borrow();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1[0].0, 400);
        // Everything was released at close.
        assert_eq!(s.node().heap.live(), ByteSize::ZERO);
    }

    #[test]
    fn state_explosion_fails_with_oom() {
        let mut s = sim(64); // 64KiB heap, state wants 640KiB
        let sink: OutputSink<W> = Rc::default();
        let frames: VecDeque<Vec<W>> = (0..10)
            .map(|_| (0..1000).map(|_| W(10)).collect())
            .collect();
        s.spawn(Box::new(OperatorWorker::new(
            Count { n: 0 },
            frames,
            sink.clone(),
            false,
            "count",
        )));
        let mut failed = None;
        for _ in 0..100_000 {
            if s.live_count() == 0 {
                break;
            }
            let r = s.run_round();
            if let Some((_, e)) = r.failed.into_iter().next() {
                failed = Some(e);
                break;
            }
        }
        assert!(failed.expect("must fail").is_oom());
        assert!(sink.borrow().is_empty());
    }
}
