//! Two-phase job execution: partition-local phase → hash shuffle →
//! bucket-exclusive aggregation phase, in both regular and ITask form.

use std::collections::VecDeque;
use std::rc::Rc;

use itask_core::{
    offer_serialized, ITask, Irs, IrsConfig, ItaskWorker, PartitionState, Tag, TaskGraph, Tuple,
};
use simcluster::{Cluster, JobOutcome, JobReport, ShardExecutor, WorkCx, DEFAULT_IO_RETRIES};
use simcore::{metrics, prof, tracer, ByteSize, NodeId, SimDuration, SimError, SimResult, SimTime};

use crate::operator::{BucketArena, Operator, OperatorWorker, OutputSink};
use crate::pool::BatchPool;

/// Parameters of a regular two-phase job.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Job name (reports).
    pub name: String,
    /// Worker threads per node (the paper sweeps 1–8).
    pub threads: usize,
    /// Frame/task granularity in serialized bytes (the paper sweeps
    /// 8–128KB).
    pub granularity: ByteSize,
    /// Number of hash buckets for the shuffle.
    pub buckets: u32,
}

impl JobSpec {
    /// A conventional spec: `threads` per node, 32KB frames, one bucket
    /// per (node, thread) pair.
    pub fn new(name: impl Into<String>, nodes: usize, threads: usize) -> Self {
        JobSpec {
            name: name.into(),
            threads,
            granularity: ByteSize::kib(32),
            buckets: (nodes * threads.max(1)) as u32,
        }
    }
}

/// Parameters of an ITask two-phase job.
#[derive(Clone, Debug)]
pub struct ItaskJobSpec {
    /// Job name.
    pub name: String,
    /// IRS configuration (defaults are the paper's: N=20, M=10, slow
    /// start, rules-based victim selection).
    pub irs: IrsConfig,
    /// Input partition granularity in serialized bytes.
    pub granularity: ByteSize,
    /// Number of hash buckets for the shuffle.
    pub buckets: u32,
}

impl ItaskJobSpec {
    /// Defaults mirroring [`JobSpec::new`] with the stock IRS config.
    pub fn new(name: impl Into<String>, nodes: usize, cores: usize) -> Self {
        ItaskJobSpec {
            name: name.into(),
            irs: IrsConfig {
                max_parallelism: cores,
                ..IrsConfig::default()
            },
            granularity: ByteSize::kib(32),
            buckets: (nodes * cores) as u32,
        }
    }
}

/// What an ITask map task emits as its final output: partial results
/// already bucketed for the shuffle.
pub struct ShuffleBatch<T> {
    /// `(bucket, tuples)` pairs.
    pub buckets: Vec<(u32, Vec<T>)>,
}

/// Splits records into frames of at most `granularity` serialized bytes.
pub fn chunk_into_frames<T: Tuple>(records: Vec<T>, granularity: ByteSize) -> Vec<Vec<T>> {
    let mut pool = BatchPool::with_capacity(0);
    chunk_into_frames_pooled(records, granularity, &mut pool)
}

/// [`chunk_into_frames`] drawing frame buffers from `pool` and parking
/// the spent input buffer there, so phase-2 framing recycles the batch
/// vectors the shuffle just retired instead of round-tripping the
/// allocator. Host-side only: frame boundaries and contents are
/// identical to the unpooled path.
pub fn chunk_into_frames_pooled<T: Tuple>(
    mut records: Vec<T>,
    granularity: ByteSize,
    pool: &mut BatchPool<T>,
) -> Vec<Vec<T>> {
    let _wall = prof::wall_timer(prof::Stage::FrameChunk);
    prof::count(prof::Stage::FrameChunk, 1, records.len() as u64);
    // Two passes: count each frame's length first so every frame (and
    // the outer vec) is allocated at exact capacity instead of grown.
    let cap = granularity.as_u64();
    let mut counts: Vec<usize> = Vec::new();
    let mut n = 0usize;
    let mut bytes = 0u64;
    for r in &records {
        let b = r.ser_bytes();
        if bytes + b > cap && n > 0 {
            counts.push(n);
            n = 0;
            bytes = 0;
        }
        bytes += b;
        n += 1;
    }
    if n > 0 {
        counts.push(n);
    }
    let mut frames = Vec::with_capacity(counts.len());
    {
        let mut it = records.drain(..);
        for n in counts {
            let mut frame = pool.take(n);
            frame.extend(it.by_ref().take(n));
            frames.push(frame);
        }
    }
    pool.put(records);
    frames
}

/// Flushes one accumulated crash-free window: runs a lockstep round
/// over `batch` (drained) and surfaces its first failure. A no-op for
/// an empty batch.
fn run_window(
    exec: &mut ShardExecutor,
    cluster: &mut Cluster,
    batch: &mut Vec<NodeId>,
) -> SimResult<()> {
    if batch.is_empty() {
        return Ok(());
    }
    let run = exec.run_round(cluster, batch, true);
    batch.clear();
    if let Some((_, report)) = run.first_failure() {
        if let Some((_, e)) = report.failed.first() {
            return Err(e.clone());
        }
    }
    Ok(())
}

/// Drives every node until all threads retire; the first failure aborts.
///
/// With a fault plan armed on the cluster, scheduled node crashes fire
/// as node clocks reach their instants. A regular job has no way to
/// recover the lost state, so a crash fails it with `NodeLost` (the
/// paper's baselines die; ITask jobs recover in [`drive_irs`] instead).
///
/// Crash plans no longer force the whole run serial: walking nodes in
/// order, stretches of nodes with no pending crash batch into lockstep
/// shard-executor rounds (a `poll_crash` on them would be a no-op), and
/// only a node that still has an unfired crash runs round-then-poll
/// serially — the exact interleaving of the old fully-serial loop, so
/// output bytes are unchanged, with everything between the crash
/// windows back on the parallel path.
fn drive_phase(cluster: &mut Cluster) -> SimResult<()> {
    let mut exec = ShardExecutor::new();
    let mut batch: Vec<NodeId> = Vec::with_capacity(cluster.node_count());
    loop {
        let mut any_live = false;
        for n in 0..cluster.node_count() {
            let node = NodeId(n as u32);
            let sim = cluster.sim(node);
            if sim.is_crashed() || sim.live_count() == 0 {
                continue;
            }
            any_live = true;
            if !cluster.crash_pending(node) {
                batch.push(node);
                continue;
            }
            run_window(&mut exec, cluster, &mut batch)?;
            let failed = ShardExecutor::run_node_round(cluster, node).failed;
            let _ = cluster.poll_crash(node);
            if cluster.sim(node).is_crashed() {
                return Err(SimError::NodeLost { node });
            }
            if let Some((_, e)) = failed.into_iter().next() {
                return Err(e);
            }
        }
        if !any_live {
            return Ok(());
        }
        run_window(&mut exec, cluster, &mut batch)?;
    }
}

/// Per-source bucketed output entering the shuffle: each node's
/// [`BucketArena`] of flush-ordered batches over dense per-bucket
/// tuple arenas.
type BucketedOutputs<T> = Vec<(NodeId, BucketArena<T>)>;

/// Per-destination-node bucket → tuples leaving the shuffle: a dense
/// vector indexed by bucket id (empty slot = no tuples routed there).
/// The bucket space is small (nodes × threads × a small constant), so
/// direct indexing replaces the per-batch `BTreeMap` probe the old
/// representation paid millions of times per run; in-order iteration
/// filtered to non-empty slots yields exactly the ascending-bucket walk
/// a BTreeMap gave.
type ShuffledInputs<T> = Vec<Vec<Vec<T>>>;

/// Iterates a node's shuffled buckets in ascending order, skipping the
/// empty slots of the dense representation.
fn nonempty_buckets<T>(buckets: Vec<Vec<T>>) -> impl Iterator<Item = (u32, Vec<T>)> {
    buckets
        .into_iter()
        .enumerate()
        .filter(|(_, tuples)| !tuples.is_empty())
        .map(|(b, tuples)| (b as u32, tuples))
}

/// Routes bucketed outputs to their destination nodes, charging the
/// fabric, and returns per-node bucket → tuples maps plus the barrier
/// duration.
///
/// Buckets only land on live nodes (on a healthy cluster that is every
/// node, and the routing is identical to the classic `bucket % nodes`).
/// Finals produced by a node that crashed afterwards were streamed out
/// before the crash, so a surviving node re-sends them on its behalf.
/// Transfers consult the armed fault plan: slowdown windows dilate the
/// wire time, finite partitions stall the sender, and a permanent
/// partition fails the shuffle with `NetPartition`.
fn shuffle<T: Tuple>(
    cluster: &mut Cluster,
    outputs: BucketedOutputs<T>,
    pool: &mut BatchPool<T>,
) -> SimResult<(ShuffledInputs<T>, SimDuration)> {
    let _wall = prof::wall_timer(prof::Stage::Shuffle);
    let nodes = cluster.node_count();
    let live = cluster.live_nodes();
    let now = SimTime::ZERO + cluster.elapsed();
    let mut per_node: ShuffledInputs<T> = (0..nodes).map(|_| Vec::new()).collect();
    let mut max_wire = SimDuration::ZERO;
    let (mut batch_count, mut byte_count) = (0u64, 0u64);
    let mut wire_total = SimDuration::ZERO;
    let mut cursors: Vec<usize> = Vec::new();
    for (src, arena) in outputs {
        let src = if live.contains(&src) {
            src
        } else {
            *live.first().ok_or(SimError::NodeLost { node: src })?
        };
        let (arenas, batches) = arena.into_parts();
        // Charge the fabric per flushed batch, in flush order — the
        // exact transfer sequence (and therefore every wire time) the
        // per-batch-vector representation produced. A cursor per bucket
        // walks each arena so a batch's bytes are summed over its own
        // slice.
        cursors.clear();
        cursors.resize(arenas.len(), 0);
        for (bucket, len) in batches {
            let bi = bucket as usize;
            let dst = live[bi % live.len()];
            let start = cursors[bi];
            cursors[bi] = start + len as usize;
            let bytes = ByteSize(
                arenas[bi][start..cursors[bi]]
                    .iter()
                    .map(Tuple::ser_bytes)
                    .sum(),
            );
            let wire = cluster.fabric().transfer_at(src, dst, bytes, now)?;
            max_wire = max_wire.max(wire);
            batch_count += 1;
            byte_count += bytes.as_u64();
            wire_total += wire;
        }
        // Every batch of bucket `b` from this source lands on the same
        // destination, so the whole per-bucket arena moves in one step:
        // adopted outright by the first source to fill the slot, bulk-
        // appended after that. Retired buffers park in the pool for
        // phase-2 framing.
        for (bi, mut tuples) in arenas.into_iter().enumerate() {
            if tuples.is_empty() {
                pool.put(tuples);
                continue;
            }
            let dst = live[bi % live.len()];
            let slots = &mut per_node[dst.as_usize()];
            if slots.len() <= bi {
                slots.resize_with(bi + 1, Vec::new);
            }
            if slots[bi].is_empty() {
                pool.put(std::mem::replace(&mut slots[bi], tuples));
            } else {
                slots[bi].append(&mut tuples);
                pool.put(tuples);
            }
        }
    }
    prof::count(prof::Stage::Shuffle, batch_count, byte_count);
    prof::vtime(prof::Stage::Shuffle, wire_total);
    // One aggregate span per shuffle call (per-batch events would be
    // millions per run): the span covers the shuffle barrier itself.
    if tracer::is_enabled() {
        tracer::emit(
            None,
            None,
            now,
            max_wire,
            tracer::TraceData::Shuffle {
                batches: batch_count,
                bytes: byte_count,
                wire_ns: wire_total.as_nanos(),
            },
        );
    }
    if metrics::is_enabled() && byte_count > 0 {
        metrics::counter_add(None, metrics::Metric::ShuffleBytes, now, byte_count);
    }
    Ok((per_node, max_wire))
}

/// Traces one node's phase-2 framing as a single aggregate event (the
/// per-frame `prof` counters already capture volume; the trace only
/// needs the when/where).
fn trace_frame_chunk(cluster: &Cluster, node: NodeId, tuples: u64) {
    if tracer::is_enabled() && tuples > 0 {
        tracer::emit(
            Some(node),
            None,
            SimTime::ZERO + cluster.elapsed(),
            SimDuration::ZERO,
            tracer::TraceData::FrameChunk { tuples },
        );
    }
}

/// Runs a regular (non-interruptible) two-phase job.
///
/// Returns the job report (always, even on failure — the paper's CTime
/// is the time *until* the crash) and the final outputs or the error.
pub fn run_regular<M, R>(
    cluster: &mut Cluster,
    inputs: Vec<Vec<Vec<M::In>>>,
    spec: &JobSpec,
    map_factory: impl Fn() -> M,
    reduce_factory: impl Fn() -> R,
) -> (JobReport, SimResult<Vec<R::Out>>)
where
    M: Operator + 'static,
    R: Operator<In = M::Out> + 'static,
{
    assert_eq!(
        inputs.len(),
        cluster.node_count(),
        "one input list per node"
    );
    assert!(spec.threads > 0, "at least one thread");

    // ---- Phase 1: partition-local operators over input frames.
    let mut map_sinks: Vec<OutputSink<M::Out>> = Vec::new();
    for (n, frames) in inputs.into_iter().enumerate() {
        let sink: OutputSink<M::Out> = OutputSink::default();
        map_sinks.push(sink.clone());
        // Deal frames round-robin to the fixed thread pool.
        let mut per_thread: Vec<VecDeque<Vec<M::In>>> =
            (0..spec.threads).map(|_| VecDeque::new()).collect();
        for (i, f) in frames.into_iter().enumerate() {
            per_thread[i % spec.threads].push_back(f);
        }
        let sim = cluster.sim(NodeId(n as u32));
        for (t, frames) in per_thread.into_iter().enumerate() {
            if frames.is_empty() {
                continue;
            }
            sim.spawn(Box::new(OperatorWorker::new(
                map_factory(),
                frames,
                sink.clone(),
                true,
                format!("{}.map{t}", spec.name),
            )));
        }
    }
    if let Err(e) = drive_phase(cluster) {
        return (cluster.report(JobOutcome::Failed(e.clone())), Err(e));
    }
    cluster.sync_clocks(SimDuration::ZERO);

    // ---- Shuffle.
    // Retired workers still hold sink handles; drain in place.
    let outputs: BucketedOutputs<M::Out> = map_sinks
        .into_iter()
        .enumerate()
        .map(|(n, s)| (NodeId(n as u32), std::mem::take(&mut *s.lock().unwrap())))
        .collect();
    // Spent batch buffers park here and come back out as phase-2 frames.
    let mut pool: BatchPool<M::Out> = BatchPool::new();
    let (per_node, wire) = match shuffle(cluster, outputs, &mut pool) {
        Ok(x) => x,
        Err(e) => return (cluster.report(JobOutcome::Failed(e.clone())), Err(e)),
    };
    cluster.sync_clocks(wire);

    // ---- Phase 2: bucket-exclusive aggregation.
    let mut reduce_sinks: Vec<OutputSink<R::Out>> = Vec::new();
    for (n, buckets) in per_node.into_iter().enumerate() {
        let sink: OutputSink<R::Out> = OutputSink::default();
        reduce_sinks.push(sink.clone());
        // Whole buckets per thread (hash semantics).
        let mut per_thread: Vec<VecDeque<Vec<M::Out>>> =
            (0..spec.threads).map(|_| VecDeque::new()).collect();
        let mut framed_tuples = 0u64;
        for (bucket, tuples) in nonempty_buckets(buckets) {
            framed_tuples += tuples.len() as u64;
            let t = (bucket as usize / cluster.node_count()) % spec.threads;
            for frame in chunk_into_frames_pooled(tuples, spec.granularity, &mut pool) {
                per_thread[t].push_back(frame);
            }
        }
        trace_frame_chunk(cluster, NodeId(n as u32), framed_tuples);
        let sim = cluster.sim(NodeId(n as u32));
        for (t, frames) in per_thread.into_iter().enumerate() {
            if frames.is_empty() {
                continue;
            }
            sim.spawn(Box::new(OperatorWorker::new(
                reduce_factory(),
                frames,
                sink.clone(),
                false,
                format!("{}.red{t}", spec.name),
            )));
        }
    }
    if let Err(e) = drive_phase(cluster) {
        return (cluster.report(JobOutcome::Failed(e.clone())), Err(e));
    }
    cluster.sync_clocks(SimDuration::ZERO);

    // ---- Collect (bucket order for determinism).
    let mut all: Vec<(u32, Vec<R::Out>)> = Vec::new();
    for s in reduce_sinks {
        all.extend(s.lock().unwrap().drain_groups());
    }
    all.sort_by_key(|(b, _)| *b);
    let outs = all.into_iter().flat_map(|(_, v)| v).collect();
    (cluster.report(JobOutcome::Completed), Ok(outs))
}

/// Per-node ITask factories for one two-phase job.
pub struct ItaskFactories {
    /// Builds the map task (emits final [`ShuffleBatch`]s).
    pub map: Rc<dyn Fn() -> Box<dyn ITask>>,
    /// Builds the reduce task (queues tagged partials to the merge).
    pub reduce: Rc<dyn Fn() -> Box<dyn ITask>>,
    /// Builds the merge MITask (emits final `Vec<Out>`).
    pub merge: Rc<dyn Fn() -> Box<dyn ITask>>,
}

impl Clone for ItaskFactories {
    fn clone(&self) -> Self {
        ItaskFactories {
            map: self.map.clone(),
            reduce: self.reduce.clone(),
            merge: self.merge.clone(),
        }
    }
}

/// Drives a set of per-node IRS controllers to completion.
///
/// With a fault plan armed, scheduled node crashes fire as node clocks
/// reach their instants; the crashed node's work is recovered onto the
/// survivors by [`recover_crashed_node`] and the job keeps going —
/// recovery fails the job only when *no* node survives.
fn drive_irs(cluster: &mut Cluster, irss: &mut [Irs]) -> SimResult<()> {
    // Controller ticks stay on the driver thread — tick(n) reads only
    // node n, and no other node's round touches node n, so deferring a
    // batched node's round to the window flush preserves per-node
    // semantics exactly. Nodes with a pending (unfired) crash run the
    // serial tick-round-poll interleaving so recovery can re-home work
    // before later nodes tick — the old fully-serial loop's order —
    // while every crash-free stretch rides the shard executor.
    let mut exec = ShardExecutor::new();
    let mut batch: Vec<NodeId> = Vec::with_capacity(irss.len());
    loop {
        let mut any = false;
        for n in 0..irss.len() {
            let node = NodeId(n as u32);
            if cluster.sim(node).is_crashed() || irss[n].is_idle() {
                continue;
            }
            any = true;
            if !cluster.crash_pending(node) {
                irss[n].tick(cluster.sim(node))?;
                if !irss[n].is_idle() {
                    batch.push(node);
                }
                continue;
            }
            run_window(&mut exec, cluster, &mut batch)?;
            irss[n].tick(cluster.sim(node))?;
            if irss[n].is_idle() {
                continue;
            }
            let failed = ShardExecutor::run_node_round(cluster, node).failed;
            let salvaged = cluster.poll_crash(node);
            if cluster.sim(node).is_crashed() {
                // The node died this round: its thread errors die
                // with it; recover its work onto the survivors.
                recover_crashed_node(cluster, irss, node, salvaged)?;
                continue;
            }
            if let Some((_, e)) = failed.into_iter().next() {
                return Err(e);
            }
        }
        if !any {
            return Ok(());
        }
        run_window(&mut exec, cluster, &mut batch)?;
    }
}

/// Crash recovery (DESIGN.md "Fault model"): a node crash is modeled as
/// an interrupt at the last safe point. The node's live instances are
/// salvaged post-mortem through the cooperative interrupt path — their
/// processed prefixes' results already left the node, the cursors mark
/// where processing stopped — and then every partition the node still
/// owned is re-homed onto the survivors round-robin by partition id,
/// paying a re-replication transfer plus a destination disk write.
/// Exactly-once falls out of the cursor semantics: emitted outputs are
/// never re-emitted, the unprocessed remainder is processed once more
/// elsewhere, so results stay bit-identical to a fault-free run.
fn recover_crashed_node(
    cluster: &mut Cluster,
    irss: &mut [Irs],
    crashed: NodeId,
    salvaged: Vec<Box<dyn simcluster::Work>>,
) -> SimResult<()> {
    // 1. Post-mortem interrupts: flush accumulated task state, release
    //    processed prefixes, requeue unprocessed remainders.
    {
        let sim = cluster.sim(crashed);
        let mut cx = WorkCx::detached(sim.node_mut(), SimDuration::ZERO);
        for mut work in salvaged {
            if let Some(any) = work.as_any_mut() {
                if let Some(worker) = any.downcast_mut::<ItaskWorker>() {
                    worker.crash_salvage(&mut cx)?;
                }
            }
        }
    }
    // 2. Re-home the dead node's queue onto the survivors.
    let mut parts = irss[crashed.as_usize()].drain_queue();
    parts.sort_by_key(|p| p.meta().id);
    let live = cluster.live_nodes();
    if live.is_empty() {
        return Err(SimError::NodeLost { node: crashed });
    }
    let now = SimTime::ZERO + cluster.elapsed();
    for mut part in parts {
        // Whatever heap form was accounted on the dead node dies there.
        if let Some(space) = part.meta().space() {
            cluster.sim(crashed).node_mut().heap.release_space(space);
        }
        let (pid, ser) = (part.meta().id, part.meta().ser_bytes);
        // Keep a whole tag group on ONE survivor. An MITask aggregates
        // its tag group in a single instance, and upstream tasks emit
        // partials *locally* — so a reduce partition tagged B and the
        // dead node's merge partials tagged B must land on the same
        // node, or two merge instances would each emit finals for the
        // same keys (duplicated results). Routing by tag alone (not
        // partition id or consumer task) guarantees that.
        let dst = live[(part.meta().tag.0 % live.len() as u64) as usize];
        // Re-replication source: any survivor other than the target.
        let donor = live.iter().copied().find(|&n| n != dst).unwrap_or(dst);
        let wire = cluster.fabric().transfer_at(donor, dst, ser, now)?;
        let dst_sim = cluster.sim(dst);
        dst_sim.node_mut().now += wire;
        let (file, _retries) = dst_sim.node_mut().disk_write_retried(
            &format!("{pid}.rehome"),
            ser,
            DEFAULT_IO_RETRIES,
        )?;
        let meta = part.meta_mut();
        meta.state = PartitionState::Serialized(file);
        meta.last_serialized = Some(dst_sim.node().now);
        if tracer::is_enabled() {
            tracer::emit(
                Some(dst),
                None,
                dst_sim.node().now,
                SimDuration::ZERO,
                tracer::TraceData::Rehome {
                    partition: pid.as_u32(),
                    from: crashed.as_u32(),
                },
            );
        }
        let handle = irss[dst.as_usize()].handle();
        handle.push_partition(part);
        handle.note_crash_requeued(1);
    }
    Ok(())
}

/// Accumulates one phase's IRS statistics into the report counters.
fn absorb_irs_stats(report: &mut JobReport, irss: &[Irs]) {
    for irs in irss {
        let st = irs.stats();
        report.bump_counter("itask.interrupts", st.interrupts as f64);
        report.bump_counter("itask.emergency_interrupts", st.emergency_interrupts as f64);
        report.bump_counter("itask.grows", st.grows as f64);
        report.bump_counter("itask.serializations", st.serializations as f64);
        report.bump_counter("itask.deserializations", st.deserializations as f64);
        report.bump_counter("itask.peak_instances", st.peak_instances as f64);
        report.bump_counter("itask.transient_io_retries", st.transient_io_retries as f64);
        report.bump_counter(
            "itask.corruption_recoveries",
            st.corruption_recoveries as f64,
        );
        report.bump_counter(
            "itask.crash_salvaged_instances",
            st.crash_salvaged_instances as f64,
        );
        report.bump_counter(
            "itask.crash_requeued_partitions",
            st.crash_requeued_partitions as f64,
        );
        report.bump_counter(
            "reclaim.local_structs",
            st.reclaim.local_structs.as_u64() as f64,
        );
        report.bump_counter(
            "reclaim.processed_input",
            st.reclaim.processed_input.as_u64() as f64,
        );
        report.bump_counter(
            "reclaim.final_results",
            st.reclaim.final_results.as_u64() as f64,
        );
        report.bump_counter(
            "reclaim.intermediate_results",
            st.reclaim.intermediate_results.as_u64() as f64,
        );
        report.bump_counter(
            "reclaim.lazy_serialized",
            st.reclaim.lazy_serialized.as_u64() as f64,
        );
        report.bump_counter("monitor.lugcs", irs.monitor_stats().lugcs_seen as f64);
    }
}

/// Runs the ITask version of a two-phase job.
///
/// Conventions (the shape of the paper's Figures 6–7):
/// * the map task's `interrupt`/`cleanup` emit `Box<ShuffleBatch<Mid>>`
///   final outputs;
/// * the reduce task's `interrupt`/`cleanup` queue partials to the merge
///   task, tagged with the input partition's bucket tag;
/// * the merge MITask's `cleanup` emits `Box<Vec<Out>>` final outputs.
pub fn run_itask<MIn, Mid, Out>(
    cluster: &mut Cluster,
    inputs: Vec<Vec<Vec<MIn>>>,
    spec: &ItaskJobSpec,
    factories: &ItaskFactories,
) -> (JobReport, SimResult<Vec<Out>>)
where
    MIn: Tuple,
    Mid: Tuple,
    Out: 'static,
{
    assert_eq!(
        inputs.len(),
        cluster.node_count(),
        "one input list per node"
    );

    // ---- Phase 1: map ITasks fed by serialized input partitions.
    let mut irss: Vec<Irs> = Vec::new();
    for (n, frames) in inputs.into_iter().enumerate() {
        let mut graph = TaskGraph::new();
        let map_f = factories.map.clone();
        let map = graph.add_task("map", move || map_f());
        let irs = Irs::new(graph, spec.irs);
        let handle = irs.handle();
        let sim = cluster.sim(NodeId(n as u32));
        for frame in frames {
            if let Err(e) = offer_serialized(&handle, sim.node_mut(), map, Tag(0), frame) {
                return (cluster.report(JobOutcome::Failed(e.clone())), Err(e));
            }
        }
        irss.push(irs);
    }
    if let Err(e) = drive_irs(cluster, &mut irss) {
        let mut report = cluster.report(JobOutcome::Failed(e.clone()));
        absorb_irs_stats(&mut report, &irss);
        return (report, Err(e));
    }
    cluster.sync_clocks(SimDuration::ZERO);

    // ---- Collect map finals and shuffle.
    let mut outputs: BucketedOutputs<Mid> = Vec::new();
    for (n, irs) in irss.iter_mut().enumerate() {
        let mut arena = BucketArena::default();
        for out in irs.take_final_outputs() {
            let batch = out
                .data
                .downcast::<ShuffleBatch<Mid>>()
                .expect("map tasks emit ShuffleBatch finals");
            for (bucket, tuples) in batch.buckets {
                arena.push_batch(bucket, tuples);
            }
        }
        outputs.push((NodeId(n as u32), arena));
    }
    // Spent batch buffers park here and come back out as phase-2 frames.
    let mut pool: BatchPool<Mid> = BatchPool::new();
    let (per_node, wire) = match shuffle(cluster, outputs, &mut pool) {
        Ok(x) => x,
        Err(e) => {
            let mut report = cluster.report(JobOutcome::Failed(e.clone()));
            absorb_irs_stats(&mut report, &irss);
            return (report, Err(e));
        }
    };
    cluster.sync_clocks(wire);

    // ---- Phase 2: reduce + merge ITasks.
    let mut irss2: Vec<Irs> = Vec::new();
    for (n, buckets) in per_node.into_iter().enumerate() {
        let mut graph = TaskGraph::new();
        let red_f = factories.reduce.clone();
        let mer_f = factories.merge.clone();
        let reduce = graph.add_task("reduce", move || red_f());
        let merge = graph.add_mitask("merge", move || mer_f());
        graph.connect(reduce, merge);
        graph.connect(merge, merge);
        let irs = Irs::new(graph, spec.irs);
        let handle = irs.handle();
        let sim = cluster.sim(NodeId(n as u32));
        let mut framed_tuples = 0u64;
        for (bucket, tuples) in nonempty_buckets(buckets) {
            framed_tuples += tuples.len() as u64;
            for frame in chunk_into_frames_pooled(tuples, spec.granularity, &mut pool) {
                if let Err(e) =
                    offer_serialized(&handle, sim.node_mut(), reduce, Tag(bucket as u64), frame)
                {
                    return (cluster.report(JobOutcome::Failed(e.clone())), Err(e));
                }
            }
        }
        trace_frame_chunk(cluster, NodeId(n as u32), framed_tuples);
        irss2.push(irs);
    }
    if let Err(e) = drive_irs(cluster, &mut irss2) {
        let mut report = cluster.report(JobOutcome::Failed(e.clone()));
        absorb_irs_stats(&mut report, &irss);
        absorb_irs_stats(&mut report, &irss2);
        return (report, Err(e));
    }
    cluster.sync_clocks(SimDuration::ZERO);

    // ---- Collect merge finals.
    let mut outs: Vec<Out> = Vec::new();
    for irs in &mut irss2 {
        for out in irs.take_final_outputs() {
            let v = out
                .data
                .downcast::<Vec<Out>>()
                .expect("merge tasks emit Vec<Out> finals");
            outs.extend(*v);
        }
    }
    let mut report = cluster.report(JobOutcome::Completed);
    absorb_irs_stats(&mut report, &irss);
    absorb_irs_stats(&mut report, &irss2);
    (report, Ok(outs))
}

/// Convenience: distributes generator blocks across nodes round-robin
/// and chunks each block into frames (HDFS-style locality).
pub fn distribute_blocks<T: Tuple>(
    nodes: usize,
    blocks: Vec<Vec<T>>,
    granularity: ByteSize,
) -> Vec<Vec<Vec<T>>> {
    let mut per_node: Vec<Vec<Vec<T>>> = (0..nodes).map(|_| Vec::new()).collect();
    for (i, block) in blocks.into_iter().enumerate() {
        let frames = chunk_into_frames(block, granularity);
        per_node[i % nodes].extend(frames);
    }
    per_node
}
