//! A slab of recycled `Vec<T>` buffers for tuple batches.
//!
//! The shuffle retires millions of small per-bucket batch vectors per
//! run, and phase-2 framing immediately allocates a fresh wave of frame
//! vectors of the same element type. [`BatchPool`] closes that loop:
//! spent buffers are cleared and parked (up to a cap) instead of freed,
//! and later draws reuse their capacity instead of hitting the
//! allocator. This is purely a *host*-level optimization — pooling
//! never touches simulated heap accounting or virtual-time charges, so
//! results and printed tables are byte-identical with or without it.

/// A size-capped stash of empty-but-capacitied `Vec<T>` buffers.
pub struct BatchPool<T> {
    slots: Vec<Vec<T>>,
    max_slots: usize,
}

/// Default cap on parked buffers; past this, [`BatchPool::put`] lets
/// buffers drop normally so a huge shuffle cannot pin its whole output
/// footprint in the pool.
pub const DEFAULT_POOL_SLOTS: usize = 4096;

impl<T> BatchPool<T> {
    /// An empty pool with the default slot cap.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_POOL_SLOTS)
    }

    /// An empty pool parking at most `max_slots` buffers.
    pub fn with_capacity(max_slots: usize) -> Self {
        BatchPool {
            slots: Vec::new(),
            max_slots,
        }
    }

    /// Number of buffers currently parked.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the pool holds no buffers.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Takes a buffer with room for at least `cap` elements: a parked
    /// buffer (grown if its capacity falls short) or a fresh allocation
    /// when the pool is dry.
    pub fn take(&mut self, cap: usize) -> Vec<T> {
        match self.slots.pop() {
            Some(mut v) => {
                debug_assert!(v.is_empty());
                if v.capacity() < cap {
                    v.reserve_exact(cap - v.len());
                }
                v
            }
            None => Vec::with_capacity(cap),
        }
    }

    /// Parks a spent buffer for reuse. Its contents are cleared
    /// (dropping the elements now, exactly as an ordinary free would);
    /// zero-capacity buffers and overflow past the slot cap are simply
    /// dropped.
    pub fn put(&mut self, mut buf: Vec<T>) {
        buf.clear();
        if buf.capacity() > 0 && self.slots.len() < self.max_slots {
            self.slots.push(buf);
        }
    }
}

impl<T> Default for BatchPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_capacity() {
        let mut pool: BatchPool<u64> = BatchPool::new();
        let mut v = pool.take(8);
        v.extend(0..8);
        let ptr = v.as_ptr();
        pool.put(v);
        assert_eq!(pool.len(), 1);
        let v2 = pool.take(4);
        assert!(v2.is_empty());
        assert!(v2.capacity() >= 8);
        assert_eq!(v2.as_ptr(), ptr);
    }

    #[test]
    fn grows_undersized_buffers() {
        let mut pool: BatchPool<u64> = BatchPool::new();
        let mut v = pool.take(2);
        v.extend(0..2);
        pool.put(v);
        let v2 = pool.take(100);
        assert!(v2.capacity() >= 100);
    }

    #[test]
    fn respects_slot_cap_and_drops_empty() {
        let mut pool: BatchPool<u64> = BatchPool::with_capacity(2);
        pool.put(Vec::with_capacity(1));
        pool.put(Vec::with_capacity(1));
        pool.put(Vec::with_capacity(1)); // over cap: dropped
        assert_eq!(pool.len(), 2);
        pool.put(Vec::new()); // zero capacity: dropped
        assert_eq!(pool.len(), 2);
    }
}
