//! End-to-end engine test: a miniature word count run as (a) a regular
//! two-phase job and (b) an ITask job — the regular version must OME on
//! a small heap where the ITask version survives with exact results
//! (the paper's headline claim).

use std::collections::BTreeMap;
use std::rc::Rc;

use hyracks::{
    distribute_blocks, run_itask, run_regular, ItaskFactories, ItaskJobSpec, JobSpec, OpCx,
    Operator, ShuffleBatch,
};
use itask_core::{ITask, Scale, TaskCx, Tuple, TupleTask};
use simcluster::{Cluster, ClusterConfig};
use simcore::TaskId;
use simcore::{ByteSize, DetRng, SimResult};

const ENTRY: u64 = 64;
const BUCKETS: u32 = 12;

thread_local! {
    static MAP_OUT: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    static RED_IN: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    static RED_OUT: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    static MRG_IN: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    static MRG_OUT: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}
fn bump(c: &'static std::thread::LocalKey<std::cell::Cell<u64>>, by: u64) {
    c.with(|x| x.set(x.get() + by));
}

#[derive(Clone, Copy, Debug)]
struct WordT(u32);

impl Tuple for WordT {
    fn heap_bytes(&self) -> u64 {
        48
    }
}

#[derive(Clone, Copy, Debug)]
struct CountT(u32, u64);

impl Tuple for CountT {
    fn heap_bytes(&self) -> u64 {
        ENTRY
    }
}

fn bucket_of(w: u32) -> u32 {
    w % BUCKETS
}

// ---------------- regular operators ----------------

#[derive(Default)]
struct CountOp {
    counts: BTreeMap<u32, u64>,
}

impl Operator for CountOp {
    type In = WordT;
    type Out = CountT;

    fn open(&mut self, _cx: &mut OpCx<'_, '_, CountT>) -> SimResult<()> {
        Ok(())
    }

    fn next(&mut self, cx: &mut OpCx<'_, '_, CountT>, t: &WordT) -> SimResult<()> {
        if let std::collections::btree_map::Entry::Vacant(v) = self.counts.entry(t.0) {
            cx.alloc_state(ByteSize(ENTRY))?;
            v.insert(0);
        }
        *self.counts.get_mut(&t.0).expect("just ensured") += 1;
        Ok(())
    }

    fn close(&mut self, cx: &mut OpCx<'_, '_, CountT>) -> SimResult<()> {
        for (w, c) in std::mem::take(&mut self.counts) {
            cx.emit(bucket_of(w), CountT(w, c));
        }
        Ok(())
    }
}

/// Regular reduce operator: sums CountT partials per word.
#[derive(Default)]
struct SumOp {
    counts: BTreeMap<u32, u64>,
}

impl Operator for SumOp {
    type In = CountT;
    type Out = CountT;

    fn open(&mut self, _cx: &mut OpCx<'_, '_, CountT>) -> SimResult<()> {
        Ok(())
    }

    fn next(&mut self, cx: &mut OpCx<'_, '_, CountT>, t: &CountT) -> SimResult<()> {
        if let std::collections::btree_map::Entry::Vacant(v) = self.counts.entry(t.0) {
            cx.alloc_state(ByteSize(ENTRY))?;
            v.insert(0);
        }
        *self.counts.get_mut(&t.0).expect("just ensured") += t.1;
        Ok(())
    }

    fn close(&mut self, cx: &mut OpCx<'_, '_, CountT>) -> SimResult<()> {
        for (w, c) in std::mem::take(&mut self.counts) {
            cx.emit(bucket_of(w), CountT(w, c));
        }
        Ok(())
    }
}

// ---------------- ITask versions ----------------

#[derive(Default)]
struct CountMapTask {
    counts: BTreeMap<u32, u64>,
}

impl CountMapTask {
    fn flush(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        if self.counts.is_empty() {
            return Ok(());
        }
        let mut buckets: BTreeMap<u32, Vec<CountT>> = BTreeMap::new();
        for (w, c) in std::mem::take(&mut self.counts) {
            buckets.entry(bucket_of(w)).or_default().push(CountT(w, c));
        }
        let batch = ShuffleBatch {
            buckets: buckets.into_iter().collect(),
        };
        bump(
            &MAP_OUT,
            batch.buckets.iter().flat_map(|(_, v)| v).map(|c| c.1).sum(),
        );
        let ser: u64 = batch
            .buckets
            .iter()
            .flat_map(|(_, v)| v.iter())
            .map(Tuple::ser_bytes)
            .sum();
        cx.emit_final(Box::new(batch), ByteSize(ser))
    }
}

impl TupleTask for CountMapTask {
    type In = WordT;

    fn initialize(&mut self, _cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        Ok(())
    }

    fn process(&mut self, cx: &mut TaskCx<'_, '_>, t: &WordT) -> SimResult<()> {
        if let std::collections::btree_map::Entry::Vacant(v) = self.counts.entry(t.0) {
            cx.alloc_out(ByteSize(ENTRY))?;
            v.insert(0);
        }
        *self.counts.get_mut(&t.0).expect("just ensured") += 1;
        Ok(())
    }

    fn interrupt(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        self.flush(cx)
    }

    fn cleanup(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        self.flush(cx)
    }
}

/// Reduce: merges CountT partials of one bucket partition, queueing the
/// result (tagged with the bucket) for the merge MITask.
#[derive(Default)]
struct CountReduceTask {
    counts: BTreeMap<u32, u64>,
    merge_task: u32,
}

impl CountReduceTask {
    fn flush(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        if self.counts.is_empty() {
            return Ok(());
        }
        let items: Vec<CountT> = std::mem::take(&mut self.counts)
            .into_iter()
            .map(|(w, c)| CountT(w, c))
            .collect();
        bump(&RED_OUT, items.iter().map(|c| c.1).sum());
        let tag = cx.input_tag();
        cx.emit_to_task(TaskId(self.merge_task), tag, items)
    }
}

impl TupleTask for CountReduceTask {
    type In = CountT;

    fn initialize(&mut self, _cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        Ok(())
    }

    fn process(&mut self, cx: &mut TaskCx<'_, '_>, t: &CountT) -> SimResult<()> {
        bump(&RED_IN, t.1);
        if let std::collections::btree_map::Entry::Vacant(v) = self.counts.entry(t.0) {
            cx.alloc_out(ByteSize(ENTRY))?;
            v.insert(0);
        }
        *self.counts.get_mut(&t.0).expect("just ensured") += t.1;
        Ok(())
    }

    fn interrupt(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        self.flush(cx)
    }

    fn cleanup(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        self.flush(cx)
    }
}

/// Merge MITask: aggregates one tag group; re-queues partials to itself
/// on interrupt, emits the final counts on cleanup.
#[derive(Default)]
struct CountMergeTask {
    counts: BTreeMap<u32, u64>,
}

impl TupleTask for CountMergeTask {
    type In = CountT;

    fn initialize(&mut self, _cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        Ok(())
    }

    fn process(&mut self, cx: &mut TaskCx<'_, '_>, t: &CountT) -> SimResult<()> {
        bump(&MRG_IN, t.1);
        if let std::collections::btree_map::Entry::Vacant(v) = self.counts.entry(t.0) {
            cx.alloc_out(ByteSize(ENTRY))?;
            v.insert(0);
        }
        *self.counts.get_mut(&t.0).expect("just ensured") += t.1;
        Ok(())
    }

    fn interrupt(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        if self.counts.is_empty() {
            return Ok(());
        }
        let items: Vec<CountT> = std::mem::take(&mut self.counts)
            .into_iter()
            .map(|(w, c)| CountT(w, c))
            .collect();
        let tag = cx.input_tag();
        let me = cx.task();
        cx.emit_to_task(me, tag, items)
    }

    fn cleanup(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        let out: Vec<CountT> = std::mem::take(&mut self.counts)
            .into_iter()
            .map(|(w, c)| CountT(w, c))
            .collect();
        bump(&MRG_OUT, out.iter().map(|c| c.1).sum());
        let ser: u64 = out.iter().map(Tuple::ser_bytes).sum();
        cx.emit_final(Box::new(out), ByteSize(ser))
    }
}

// ---------------- harness ----------------

fn cluster(heap_kib: u64) -> Cluster {
    Cluster::new(ClusterConfig {
        nodes: 3,
        cores: 4,
        heap_per_node: ByteSize::kib(heap_kib),
        ..ClusterConfig::default()
    })
}

fn input_blocks(n_words: usize, vocab: u64, seed: u64) -> (Vec<Vec<WordT>>, BTreeMap<u32, u64>) {
    let mut rng = DetRng::new(seed);
    let words: Vec<u32> = (0..n_words).map(|_| rng.below(vocab) as u32).collect();
    let mut truth = BTreeMap::new();
    for &w in &words {
        *truth.entry(w).or_insert(0u64) += 1;
    }
    let blocks = words
        .chunks(2_000)
        .map(|c| c.iter().map(|&w| WordT(w)).collect())
        .collect();
    (blocks, truth)
}

fn as_map(outs: Vec<CountT>) -> BTreeMap<u32, u64> {
    let mut m = BTreeMap::new();
    for CountT(w, c) in outs {
        assert!(
            m.insert(w, c).is_none(),
            "duplicate key {w} in final output"
        );
    }
    m
}

fn itask_factories() -> ItaskFactories {
    ItaskFactories {
        map: Rc::new(|| Box::new(Scale(CountMapTask::default())) as Box<dyn ITask>),
        // The merge task is always task id 1 in the phase-2 graph.
        reduce: Rc::new(|| {
            Box::new(Scale(CountReduceTask {
                counts: BTreeMap::new(),
                merge_task: 1,
            })) as Box<dyn ITask>
        }),
        merge: Rc::new(|| Box::new(Scale(CountMergeTask::default())) as Box<dyn ITask>),
    }
}

#[test]
fn regular_job_is_correct_with_ample_heap() {
    let (blocks, truth) = input_blocks(60_000, 4_000, 1);
    let mut c = cluster(8_192);
    let inputs = distribute_blocks(3, blocks, ByteSize::kib(32));
    let spec = JobSpec::new("wc", 3, 4);
    let (report, result) = run_regular(&mut c, inputs, &spec, CountOp::default, SumOp::default);
    assert!(report.outcome.ok());
    assert_eq!(as_map(result.unwrap()), truth);
    assert!(report.elapsed > simcore::SimDuration::ZERO);
}

#[test]
fn itask_job_is_correct_with_ample_heap() {
    let (blocks, truth) = input_blocks(60_000, 4_000, 1);
    let mut c = cluster(8_192);
    let inputs = distribute_blocks(3, blocks, ByteSize::kib(32));
    let spec = ItaskJobSpec::new("wc-itask", 3, 4);
    let (report, result) =
        run_itask::<WordT, CountT, CountT>(&mut c, inputs, &spec, &itask_factories());
    assert!(report.outcome.ok(), "{:?}", report.outcome);
    assert_eq!(as_map(result.unwrap()), truth);
}

#[test]
fn regular_job_omes_where_itask_survives() {
    // Each map thread's count table grows toward ~12000 * 64B = 750KiB
    // against a 512KiB node heap: the fixed-pool job must OME.
    let (blocks, truth) = input_blocks(80_000, 12_000, 2);

    let mut c_reg = cluster(512);
    let inputs = distribute_blocks(3, blocks.clone(), ByteSize::kib(32));
    let spec = JobSpec::new("wc", 3, 4);
    let (report_reg, result_reg) =
        run_regular(&mut c_reg, inputs, &spec, CountOp::default, SumOp::default);
    assert!(result_reg.is_err(), "regular job should OME");
    assert!(report_reg.outcome.is_oom());

    let mut c_itask = cluster(512);
    let inputs = distribute_blocks(3, blocks, ByteSize::kib(32));
    let ispec = ItaskJobSpec::new("wc-itask", 3, 4);
    let (report, result) =
        run_itask::<WordT, CountT, CountT>(&mut c_itask, inputs, &ispec, &itask_factories());
    assert!(
        report.outcome.ok(),
        "ITask job must survive: {:?}",
        report.outcome
    );
    let got = as_map(result.unwrap());
    let truth_total: u64 = truth.values().sum();
    // Stage-by-stage conservation: every occurrence that leaves a stage
    // arrives at the next, through interrupts, write-behind
    // serialization and group re-activations. (Each test runs on its
    // own thread, so the thread-local probes are test-private.)
    assert_eq!(MAP_OUT.with(|c| c.get()), truth_total, "map emissions");
    assert_eq!(RED_OUT.with(|c| c.get()), truth_total, "reduce emissions");
    assert_eq!(MRG_OUT.with(|c| c.get()), truth_total, "merge emissions");
    assert!(RED_IN.with(|c| c.get()) >= truth_total, "reduce intake");
    assert!(MRG_IN.with(|c| c.get()) >= truth_total, "merge intake");
    assert_eq!(got, truth);
    // It survived *by* interrupting/serializing, not by luck.
    assert!(
        report.counter("itask.interrupts")
            + report.counter("itask.emergency_interrupts")
            + report.counter("itask.serializations")
            > 0.0
    );
}

#[test]
fn itask_and_regular_agree() {
    let (blocks, _) = input_blocks(40_000, 2_000, 3);
    let mut c1 = cluster(8_192);
    let spec = JobSpec::new("wc", 3, 4);
    let (_, r1) = run_regular(
        &mut c1,
        distribute_blocks(3, blocks.clone(), ByteSize::kib(32)),
        &spec,
        CountOp::default,
        SumOp::default,
    );
    let mut c2 = cluster(8_192);
    let ispec = ItaskJobSpec::new("wc-itask", 3, 4);
    let (_, r2) = run_itask::<WordT, CountT, CountT>(
        &mut c2,
        distribute_blocks(3, blocks, ByteSize::kib(32)),
        &ispec,
        &itask_factories(),
    );
    assert_eq!(as_map(r1.unwrap()), as_map(r2.unwrap()));
}
