//! Engine-level unit tests: framing, block distribution and shuffle
//! routing invariants.

use hyracks::{chunk_into_frames, distribute_blocks};
use itask_core::Tuple;
use simcore::ByteSize;

#[derive(Clone, Copy, Debug, PartialEq)]
struct T(u64);

impl Tuple for T {
    fn heap_bytes(&self) -> u64 {
        self.0 * 3
    }

    fn ser_bytes(&self) -> u64 {
        self.0
    }
}

#[test]
fn frames_respect_granularity_and_preserve_order() {
    let records: Vec<T> = (1..=100).map(T).collect();
    let frames = chunk_into_frames(records.clone(), ByteSize(500));
    // Serialized payload per frame stays under the cap...
    for f in &frames {
        let ser: u64 = f.iter().map(Tuple::ser_bytes).sum();
        assert!(ser <= 500 || f.len() == 1, "frame ser {ser}");
    }
    // ...and concatenation reproduces the input exactly.
    let flat: Vec<T> = frames.into_iter().flatten().collect();
    assert_eq!(flat, records);
}

#[test]
fn oversized_single_records_get_their_own_frame() {
    let frames = chunk_into_frames(vec![T(10), T(5000), T(10)], ByteSize(100));
    assert_eq!(frames.len(), 3);
    assert_eq!(frames[1], vec![T(5000)]);
}

#[test]
fn empty_input_produces_no_frames() {
    let frames = chunk_into_frames(Vec::<T>::new(), ByteSize(100));
    assert!(frames.is_empty());
}

#[test]
fn blocks_distribute_round_robin_and_conserve_tuples() {
    let blocks: Vec<Vec<T>> = (0..10).map(|b| vec![T(b + 1); 5]).collect();
    let per_node = distribute_blocks(3, blocks, ByteSize(1000));
    assert_eq!(per_node.len(), 3);
    let total: usize = per_node.iter().flatten().map(Vec::len).sum();
    assert_eq!(total, 50);
    // Every node received work.
    for node in &per_node {
        assert!(!node.is_empty());
    }
}

#[test]
fn single_node_gets_everything() {
    let blocks: Vec<Vec<T>> = vec![vec![T(1); 7], vec![T(2); 3]];
    let per_node = distribute_blocks(1, blocks, ByteSize(10_000));
    assert_eq!(per_node.len(), 1);
    let total: usize = per_node[0].iter().map(Vec::len).sum();
    assert_eq!(total, 10);
}

mod empty_and_skewed_inputs {
    use super::T;
    use hyracks::{run_regular, JobSpec, OpCx, Operator};
    use simcluster::{Cluster, ClusterConfig};
    use simcore::{ByteSize, SimResult};

    /// Sums everything into bucket 0.
    #[derive(Default)]
    struct Sum(u64);

    impl Operator for Sum {
        type In = T;
        type Out = T;

        fn open(&mut self, _cx: &mut OpCx<'_, '_, T>) -> SimResult<()> {
            Ok(())
        }

        fn next(&mut self, _cx: &mut OpCx<'_, '_, T>, t: &T) -> SimResult<()> {
            self.0 += t.0;
            Ok(())
        }

        fn close(&mut self, cx: &mut OpCx<'_, '_, T>) -> SimResult<()> {
            if self.0 > 0 {
                cx.emit(0, T(self.0));
            }
            Ok(())
        }
    }

    fn cluster(nodes: usize) -> Cluster {
        Cluster::new(ClusterConfig {
            nodes,
            cores: 2,
            heap_per_node: ByteSize::mib(8),
            ..ClusterConfig::default()
        })
    }

    #[test]
    fn job_with_no_input_completes_empty() {
        let mut c = cluster(2);
        let spec = JobSpec::new("empty", 2, 2);
        let inputs: Vec<Vec<Vec<T>>> = vec![Vec::new(), Vec::new()];
        let (report, result) = run_regular(&mut c, inputs, &spec, Sum::default, Sum::default);
        assert!(report.outcome.ok());
        assert!(result.unwrap().is_empty());
    }

    /// All data on one node (maximum skew): the job still completes and
    /// conserves the sum.
    #[test]
    fn fully_skewed_input_is_handled() {
        let mut c = cluster(3);
        let spec = JobSpec::new("skew", 3, 2);
        let frames: Vec<Vec<T>> = (0..6).map(|_| (1..=50).map(T).collect()).collect();
        let inputs = vec![frames, Vec::new(), Vec::new()];
        let (report, result) = run_regular(&mut c, inputs, &spec, Sum::default, Sum::default);
        assert!(report.outcome.ok());
        let total: u64 = result.unwrap().iter().map(|t| t.0).sum();
        assert_eq!(total, 6 * (1..=50u64).sum::<u64>());
        // Only the loaded node accrued compute time in phase 1.
        assert!(report.nodes[0].compute_time > report.nodes[1].compute_time);
    }
}
