//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the tiny subset its benches use: `Criterion::bench_function`,
//! `benchmark_group` (with `sample_size` and `finish`), `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros. Each benchmark
//! runs a short warmup then a fixed sample count and prints the mean
//! iteration time — honest numbers, none of criterion's statistics.

use std::time::{Duration, Instant};

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Drives one benchmark's iterations.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times `inner` over the sample iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut inner: F) {
        // Warmup round, untimed.
        black_box(inner());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(inner());
        }
        self.total = start.elapsed();
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { iters: self.sample_size, total: Duration::ZERO };
        f(&mut b);
        let mean = b.total.checked_div(b.iters as u32).unwrap_or(Duration::ZERO);
        println!("bench {id:<40} {mean:>12.2?}/iter ({} iters)", b.iters);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string(), sample_size: None }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the group's iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let iters = self.sample_size.unwrap_or(self.parent.sample_size);
        let mut b = Bencher { iters, total: Duration::ZERO };
        f(&mut b);
        let mean = b.total.checked_div(b.iters as u32).unwrap_or(Duration::ZERO);
        println!("bench {}/{:<32} {mean:>12.2?}/iter ({iters} iters)", self.name, id);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` as running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
