//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the small, fully deterministic subset of `rand 0.8` it
//! actually uses: `StdRng` seeded via `SeedableRng::seed_from_u64`,
//! `RngCore::next_u64`, and `Rng::gen_range` over integer and float
//! ranges. The generator is xoshiro256++ seeded through splitmix64 —
//! high-quality, platform-independent, and stable across runs, which is
//! all the simulator requires (every consumer sits behind
//! `simcore::DetRng` and only cares about determinism, not about
//! matching upstream `rand`'s exact stream).

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: an endless stream of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from an explicit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore + Sized {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Unbiased-enough uniform draw in `[0, n)` via 128-bit multiply-shift.
fn below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // Expand the seed through splitmix64, per the xoshiro
            // authors' recommendation (avoids all-zero states).
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = r.gen_range(0..3);
            assert!(y < 3);
            let z: u64 = r.gen_range(5..=5);
            assert_eq!(z, 5);
            let f: f64 = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}
