//! Deterministic per-case randomness and run configuration.

/// Configuration for one `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Matches real proptest's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(&'static str),
    /// A `prop_assert*` failed.
    Fail(String),
}

/// A splitmix64 stream seeded from the test's name and case index, so
/// every case reproduces bit-identically across runs and platforms.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for case `case` of test `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_case_streams_are_stable_and_distinct() {
        let mut a = TestRng::for_case("t", 0);
        let mut b = TestRng::for_case("t", 0);
        let mut c = TestRng::for_case("t", 1);
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
