//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the subset of proptest's API that its property tests use:
//! the `proptest!` macro, `ProptestConfig::with_cases`, range / tuple /
//! `Just` / `prop_oneof!` / `prop_map` / `any::<bool>()` strategies,
//! `proptest::collection::vec`, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Semantics: each test runs `cases` deterministic random samples (the
//! case index seeds a splitmix64 stream, so failures reproduce exactly).
//! There is **no shrinking** — a failing case reports its generated
//! arguments verbatim. That is a weaker debugging experience than real
//! proptest but identical acceptance behaviour for passing suites.

pub mod strategy;
pub mod test_runner;

/// `use proptest::prelude::*;` — everything the tests import.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, 1..20)`: vectors of 1..20 elements.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a `proptest!` body; on failure the case
/// is reported (not panicked mid-generation).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts two values differ inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            l
        );
    }};
}

/// Discards the current case when its inputs don't satisfy `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// The `proptest!` block: a set of `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each `fn name(args in strategies) { body }` item.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let desc = format!(
                    concat!($(stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let outcome = (move || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "proptest case {}/{} failed: {}\nwith inputs:\n{}",
                            case + 1,
                            config.cases,
                            msg,
                            desc
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
