//! Value-generation strategies (sampling only; no shrink trees).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Something that can generate values of `Self::Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `f` (best-effort: resamples a
    /// bounded number of times, then panics).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, whence }
    }
}

impl<V, S: Strategy<Value = V> + ?Sized> Strategy for Box<S> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<V, S: Strategy<Value = V> + ?Sized> Strategy for &S {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Boxes a strategy behind `dyn Strategy` (used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `strategy.prop_filter(reason, f)`.
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples: {}", self.whence);
    }
}

/// Weighted union over same-valued strategies (`prop_oneof!`).
pub struct WeightedUnion<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total: u64,
}

impl<V> WeightedUnion<V> {
    /// Builds the union; weights must sum to a positive value.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs positive total weight");
        WeightedUnion { arms, total }
    }
}

impl<V> Strategy for WeightedUnion<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B);
    (0 A, 1 B, 2 C);
    (0 A, 1 B, 2 C, 3 D);
    (0 A, 1 B, 2 C, 3 D, 4 E);
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Uniform strategy over a whole primitive type.
pub struct AnyPrimitive<T>(PhantomData<T>);

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(PhantomData)
    }
}

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(PhantomData)
            }
        }
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize);
