//! Property tests over the whole pipeline: for arbitrary (small)
//! workloads, heap sizes and interrupt schedules, the ITask execution
//! must produce exactly the same aggregate as a direct computation —
//! interrupts may reshape *when* work happens, never *what* it computes.

use std::collections::BTreeMap;

use proptest::prelude::*;

use itask_repro::itask::{
    offer_serialized, Irs, IrsConfig, Scale, Tag, TaskCx, TaskGraph, Tuple, TupleTask,
};
use itask_repro::sim::cluster::{NodeSim, NodeState};
use itask_repro::sim::core::{ByteSize, NodeId, SimResult};

#[derive(Clone, Copy)]
struct W(u32);

impl Tuple for W {
    fn heap_bytes(&self) -> u64 {
        48
    }
}

#[derive(Default)]
struct Count {
    counts: BTreeMap<u32, u64>,
}

impl Count {
    fn flush(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        if self.counts.is_empty() {
            return Ok(());
        }
        let d = std::mem::take(&mut self.counts);
        let ser = ByteSize(d.len() as u64 * 12);
        cx.emit_final(Box::new(d), ser)
    }
}

impl TupleTask for Count {
    type In = W;

    fn initialize(&mut self, _cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        Ok(())
    }

    fn process(&mut self, cx: &mut TaskCx<'_, '_>, t: &W) -> SimResult<()> {
        if let std::collections::btree_map::Entry::Vacant(v) = self.counts.entry(t.0) {
            cx.alloc_out(ByteSize(64))?;
            v.insert(0);
        }
        *self.counts.get_mut(&t.0).expect("present") += 1;
        Ok(())
    }

    fn interrupt(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        self.flush(cx)
    }

    fn cleanup(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        self.flush(cx)
    }
}

/// Runs the interruptible count over `words` on a `heap_kib` node.
fn itask_count(words: &[u32], heap_kib: u64, chunk: usize) -> Option<BTreeMap<u32, u64>> {
    let mut sim = NodeSim::new(NodeState::new(
        NodeId(0),
        4,
        ByteSize::kib(heap_kib),
        ByteSize::mib(64),
    ));
    let mut graph = TaskGraph::new();
    let count = graph.add_task("count", || Box::new(Scale(Count::default())));
    let mut irs = Irs::new(graph, IrsConfig::default());
    let handle = irs.handle();
    for ch in words.chunks(chunk.max(1)) {
        let items: Vec<W> = ch.iter().map(|&w| W(w)).collect();
        offer_serialized(&handle, sim.node_mut(), count, Tag(0), items).ok()?;
    }
    irs.run_to_idle(&mut sim).ok()?;
    let mut totals = BTreeMap::new();
    for out in irs.take_final_outputs() {
        let m = out.data.downcast::<BTreeMap<u32, u64>>().ok()?;
        for (w, c) in m.into_iter() {
            *totals.entry(w).or_insert(0) += c;
        }
    }
    Some(totals)
}

fn truth(words: &[u32]) -> BTreeMap<u32, u64> {
    let mut m = BTreeMap::new();
    for &w in words {
        *m.entry(w).or_insert(0u64) += 1;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exactly-once processing across arbitrary workloads, partition
    /// granularities and heap sizes (pressured and unpressured alike).
    #[test]
    fn counts_survive_any_pressure(
        words in proptest::collection::vec(0u32..500, 200..3_000),
        heap_kib in 96u64..1024,
        chunk in 50usize..800,
    ) {
        // Skip configurations where a single chunk cannot ever fit
        // (tuple bytes alone exceed the heap) — those legitimately OME.
        let chunk_bytes = (chunk as u64) * 48;
        prop_assume!(chunk_bytes < heap_kib * 1024 / 2);
        let got = itask_count(&words, heap_kib, chunk);
        prop_assert!(got.is_some(), "run must survive");
        prop_assert_eq!(got.unwrap(), truth(&words));
    }

    /// Determinism as a property: same inputs, same everything.
    #[test]
    fn replay_is_bit_identical(
        words in proptest::collection::vec(0u32..200, 200..1_200),
        heap_kib in 128u64..512,
    ) {
        let a = itask_count(&words, heap_kib, 300);
        let b = itask_count(&words, heap_kib, 300);
        prop_assert_eq!(a, b);
    }
}
