//! Workspace-level integration tests: the paper's headline behaviours,
//! exercised through the public umbrella API across all crates at once.

use itask_repro::apps::hadoop_apps::{crp, msa};
use itask_repro::apps::hyracks_apps::{gr, hj, wc, HyracksParams};
use itask_repro::sim::core::{ByteSize, SCALE};
use itask_repro::workloads::tpch::TpchScale;
use itask_repro::workloads::webmap::WebmapSize;

/// Headline claim (Hyracks, §6.2): on a dataset where every regular
/// configuration dies of an OME, the ITask version completes with exact
/// results under the default configuration.
#[test]
fn itask_survives_where_every_regular_config_fails() {
    let size = WebmapSize::G27;
    let mut regular_failures = 0;
    for threads in [2, 8] {
        let p = HyracksParams {
            threads,
            ..HyracksParams::default()
        };
        let run = wc::run_regular(size, &p);
        if run.is_oom() {
            regular_failures += 1;
        }
    }
    assert!(
        regular_failures > 0,
        "27GB WC must pressure the regular version"
    );

    let p = HyracksParams::default();
    let it = wc::run_itask(size, &p);
    assert!(it.ok(), "ITask WC survives the 27GB dataset");
    assert!(wc::verify(it.result.as_ref().unwrap(), size, p.seed));
    // It survived by the paper's machinery, not by fitting in memory.
    let pressure_actions = it.report.counter("itask.interrupts")
        + it.report.counter("itask.emergency_interrupts")
        + it.report.counter("itask.serializations");
    assert!(
        pressure_actions > 0.0,
        "pressure handling must have engaged"
    );
}

/// Headline claim (Hadoop, §6.1): the reported configuration crashes
/// with a YARN retry storm; ITask survives it untouched and beats the
/// manually tuned fix.
#[test]
fn table1_shape_for_msa() {
    let seed = 42;
    let (ctime, attempts) = msa::run_ctime(seed);
    assert!(!ctime.ok(), "the Table 1 configuration must crash");
    assert!(
        attempts > 100,
        "the crash must burn the retry budget: {attempts}"
    );

    let (ptime, _) = msa::run_tuned(seed);
    assert!(ptime.ok(), "the recommended fix completes");

    let itime = msa::run_itask(seed);
    assert!(itime.ok(), "ITask survives the original configuration");
    assert!(msa::verify(itime.result.as_ref().unwrap(), seed));
    assert!(
        itime.elapsed() < ptime.elapsed(),
        "ITask ({}) must beat manual tuning ({})",
        itime.elapsed(),
        ptime.elapsed()
    );
}

/// CRP's skew cannot be fixed by parameters at all (the recommendation
/// was editing the dataset); ITask handles the original data.
#[test]
fn crp_survives_unbreakable_sentences() {
    let seed = 42;
    let (ctime, _) = crp::run_ctime(seed);
    assert!(!ctime.ok());
    let itime = crp::run_itask(seed);
    assert!(itime.ok());
    assert!(crp::verify(itime.result.as_ref().unwrap(), seed));
}

/// Figure 11(a) shape: shrinking the heap degrades the ITask version
/// gracefully instead of killing it.
#[test]
fn itask_degrades_gracefully_under_smaller_heaps() {
    let mut last = None;
    for heap_mib in [12u64, 8, 6] {
        let p = HyracksParams {
            heap_per_node: ByteSize::mib(heap_mib),
            ..HyracksParams::default()
        };
        let run = wc::run_itask(WebmapSize::G10, &p);
        assert!(run.ok(), "ITask WC must survive a {heap_mib}MiB heap");
        assert!(wc::verify(
            run.result.as_ref().unwrap(),
            WebmapSize::G10,
            p.seed
        ));
        assert!(
            run.peak_heap() <= ByteSize::mib(heap_mib),
            "peak within capacity"
        );
        last = Some(run.elapsed());
    }
    // Still finite and sane at half the memory.
    assert!(last.unwrap().as_secs_f64() * (SCALE as f64) < 3_000.0);
}

/// The scalability-upper-bound probe of §6.2: ITask HJ processes the
/// 600x TPC-H dataset (~6x beyond where the regular version dies).
#[test]
fn hj_itask_scales_to_600x() {
    let p = HyracksParams::default();
    let run = hj::run_itask(TpchScale::X600, &p);
    assert!(
        run.ok(),
        "HJ ITask must scale to 600x: {:?}",
        run.result.err()
    );
    assert!(hj::verify(
        run.result.as_ref().unwrap(),
        TpchScale::X600,
        p.seed
    ));
}

/// Regular and ITask versions agree bit-for-bit on outputs (GR).
#[test]
fn engines_agree_on_group_by_results() {
    let p = HyracksParams {
        heap_per_node: ByteSize::mib(64),
        ..HyracksParams::default()
    };
    let reg = gr::run_regular(TpchScale::X10, &p);
    let it = gr::run_itask(TpchScale::X10, &p);
    let mut a = reg.result.unwrap();
    let mut b = it.result.unwrap();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}
