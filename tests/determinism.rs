//! Determinism guarantees: the whole stack — generators, heap, engines,
//! IRS — must reproduce bit-identical results for identical seeds, and
//! diverge for different ones. Every table and figure in EXPERIMENTS.md
//! depends on this.

use itask_repro::apps::hyracks_apps::{wc, HyracksParams};
use itask_repro::sim::core::ByteSize;
use itask_repro::workloads::webmap::{WebmapConfig, WebmapSize};
use std::sync::Mutex;

/// The profiler registry is process-global, so the test that enables it
/// must not overlap with other tests in this binary (their runs would
/// bleed into its counters). Every test takes this lock.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn kv_sorted(mut v: Vec<itask_repro::apps::OutKv>) -> Vec<itask_repro::apps::OutKv> {
    v.sort();
    v
}

#[test]
fn profiler_counters_identical_across_sweep_jobs() {
    let _g = serial();
    use itask_bench::sweep;
    use itask_repro::sim::core::prof;

    // A small thread-count grid, the same shape table5 fans out.
    let grid = || -> Vec<sweep::RunSpec<'static, ()>> {
        [1usize, 2, 4]
            .into_iter()
            .map(|threads| {
                sweep::spec(format!("wc t{threads}"), move || {
                    let p = HyracksParams {
                        threads,
                        ..HyracksParams::default()
                    };
                    let _ = wc::run_regular(WebmapSize::G3, &p);
                })
            })
            .collect()
    };

    // Virtual-time profiler counters are sums of per-run contributions,
    // so the deterministic render must be byte-identical no matter how
    // the sweep executor schedules runs across OS threads.
    let render = |jobs: usize| {
        prof::reset();
        prof::enable(false);
        let _ = sweep::run_all(jobs, grid());
        prof::disable();
        prof::render(&prof::snapshot())
    };
    let serial_render = render(1);
    let fanned_render = render(4);
    assert_eq!(
        serial_render, fanned_render,
        "--jobs must never leak into profiler counters"
    );
    assert!(
        serial_render.contains("map"),
        "profile should have nonzero stages:\n{serial_render}"
    );
}

#[test]
fn traced_gc_spans_sum_to_profiler_gc_vtime() {
    let _g = serial();
    use itask_repro::sim::core::{prof, tracer};

    // The heap emits the profiler sample and the trace span from the
    // same GcRecord, so under memory pressure (same setup as the replay
    // test below) the two accountings must agree exactly: one traced
    // span per collection, durations summing to the profiler's GC
    // virtual time.
    prof::reset();
    prof::enable(false);
    tracer::enable();
    tracer::begin_run();
    let p = HyracksParams {
        heap_per_node: ByteSize::mib(6),
        ..HyracksParams::default()
    };
    let summary = wc::run_itask(WebmapSize::G10, &p);
    let trace = tracer::take_run().expect("tracer was armed");
    tracer::disable();
    prof::disable();
    let snap = prof::snapshot();
    prof::reset();
    summary.result.expect("pressured wc run completes");

    let gc = snap
        .iter()
        .find(|s| matches!(s.stage, prof::Stage::Gc))
        .expect("gc stage snapshot");
    let gc_spans: Vec<_> = trace.iter().filter(|e| e.data.kind() == "gc").collect();
    assert!(gc.events > 0, "pressured run must collect");
    assert_eq!(
        gc_spans.len() as u64,
        gc.events,
        "one traced span per profiled collection"
    );
    let traced_ns: u64 = gc_spans.iter().map(|e| e.dur.as_nanos()).sum();
    assert_eq!(
        traced_ns, gc.vtime_ns,
        "traced GC span durations must sum to the profiler's GC vtime"
    );
}

#[test]
fn regular_runs_replay_exactly() {
    let _g = serial();
    let p = HyracksParams::default();
    let a = wc::run_regular(WebmapSize::G3, &p);
    let b = wc::run_regular(WebmapSize::G3, &p);
    assert_eq!(a.report.elapsed, b.report.elapsed);
    assert_eq!(a.peak_heap(), b.peak_heap());
    assert_eq!(a.report.critical_path_gc(), b.report.critical_path_gc());
    assert_eq!(kv_sorted(a.result.unwrap()), kv_sorted(b.result.unwrap()));
}

#[test]
fn itask_runs_replay_exactly_even_under_pressure() {
    let _g = serial();
    let p = HyracksParams {
        heap_per_node: ByteSize::mib(6),
        ..HyracksParams::default()
    };
    let a = wc::run_itask(WebmapSize::G10, &p);
    let b = wc::run_itask(WebmapSize::G10, &p);
    assert_eq!(a.report.elapsed, b.report.elapsed);
    assert_eq!(
        a.report.counter("itask.interrupts"),
        b.report.counter("itask.interrupts")
    );
    assert_eq!(
        a.report.counter("itask.serializations"),
        b.report.counter("itask.serializations")
    );
    assert_eq!(kv_sorted(a.result.unwrap()), kv_sorted(b.result.unwrap()));
}

#[test]
fn chaos_runs_replay_exactly() {
    let _g = serial();
    use itask_repro::sim::core::{FaultPlan, NodeId, SimTime};
    // Same seed + same fault plan → bit-identical job report: elapsed,
    // every counter (including the injected-fault and recovery ones)
    // and the results themselves.
    let plan = FaultPlan::new(13)
        .with_disk_transients(25)
        .with_corruption(10)
        .with_crash(NodeId(2), SimTime::from_nanos(2_000_000));
    let p = HyracksParams {
        heap_per_node: ByteSize::mib(16),
        fault_plan: Some(plan),
        ..HyracksParams::default()
    };
    let a = wc::run_itask(WebmapSize::G3, &p);
    let b = wc::run_itask(WebmapSize::G3, &p);
    assert_eq!(a.report.elapsed, b.report.elapsed);
    assert_eq!(a.report.counters, b.report.counters);
    assert!(
        a.report.counter("faults_crashes") >= 1.0,
        "the plan must actually bite"
    );
    match (a.result, b.result) {
        (Ok(x), Ok(y)) => assert_eq!(kv_sorted(x), kv_sorted(y)),
        (Err(x), Err(y)) => assert_eq!(x.to_string(), y.to_string()),
        _ => panic!("divergent outcomes under identical seed + plan"),
    }
}

#[test]
fn different_seeds_produce_different_datasets_but_same_shape() {
    let _g = serial();
    let a = WebmapConfig::preset(WebmapSize::G3, 1);
    let b = WebmapConfig::preset(WebmapSize::G3, 2);
    let block_a = a.block(0, ByteSize::kib(128));
    let block_b = b.block(0, ByteSize::kib(128));
    assert_eq!(block_a.len(), block_b.len(), "same structure");
    assert_ne!(block_a, block_b, "different content");
    // Same invariant-level statistics.
    let (va, ea, _) = a.exact_stats(ByteSize::kib(128));
    let (vb, eb, _) = b.exact_stats(ByteSize::kib(128));
    assert_eq!(va, vb);
    let drift = (ea as f64 - eb as f64).abs() / ea as f64;
    assert!(drift < 0.05, "edge counts within 5%: {ea} vs {eb}");
}

#[test]
fn seed_changes_propagate_to_results() {
    let _g = serial();
    let p1 = HyracksParams {
        seed: 1,
        ..HyracksParams::default()
    };
    let p2 = HyracksParams {
        seed: 2,
        ..HyracksParams::default()
    };
    let a = wc::run_regular(WebmapSize::G3, &p1);
    let b = wc::run_regular(WebmapSize::G3, &p2);
    assert_ne!(
        kv_sorted(a.result.unwrap()),
        kv_sorted(b.result.unwrap()),
        "different seeds must not collide"
    );
}
